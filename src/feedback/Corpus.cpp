//===- feedback/Corpus.cpp - SBI-CORPUS v2 binary sharded feedback corpus -===//

#include "feedback/Corpus.h"

#include "obs/Phase.h"
#include "obs/Telemetry.h"
#include "obs/Tracer.h"
#include "support/Parallel.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string_view>
#include <thread>

using namespace sbi;

namespace {

// --- Primitive encoding ----------------------------------------------------

void putU32(std::string &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out += static_cast<char>((V >> (8 * I)) & 0xff);
}

void putU64(std::string &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out += static_cast<char>((V >> (8 * I)) & 0xff);
}

void putVarint(std::string &Out, uint64_t V) {
  while (V >= 0x80) {
    Out += static_cast<char>(V | 0x80);
    V >>= 7;
  }
  Out += static_cast<char>(V);
}

uint64_t zigzagEncode(int64_t V) {
  return (static_cast<uint64_t>(V) << 1) ^ static_cast<uint64_t>(V >> 63);
}

int64_t zigzagDecode(uint64_t V) {
  return static_cast<int64_t>(V >> 1) ^ -static_cast<int64_t>(V & 1);
}

uint32_t fnv1a(uint32_t Hash, const char *Data, size_t Size) {
  for (size_t I = 0; I < Size; ++I) {
    Hash ^= static_cast<uint8_t>(Data[I]);
    Hash *= 16777619u;
  }
  return Hash;
}
constexpr uint32_t Fnv1aBasis = 2166136261u;

uint32_t readU32(const char *Data) {
  uint32_t V = 0;
  for (int I = 3; I >= 0; --I)
    V = (V << 8) | static_cast<uint8_t>(Data[I]);
  return V;
}

uint64_t readU64(const char *Data) {
  uint64_t V = 0;
  for (int I = 7; I >= 0; --I)
    V = (V << 8) | static_cast<uint8_t>(Data[I]);
  return V;
}

/// Bounded LEB128 decode; false on truncation or > 64 bits.
bool readVarint(std::string_view Data, size_t &Pos, uint64_t &Out) {
  Out = 0;
  for (int Shift = 0; Shift < 64; Shift += 7) {
    if (Pos >= Data.size())
      return false;
    uint8_t Byte = static_cast<uint8_t>(Data[Pos++]);
    uint64_t Bits = Byte & 0x7f;
    if (Shift == 63 && Bits > 1)
      return false; // Overflows 64 bits.
    Out |= Bits << Shift;
    if (!(Byte & 0x80))
      return true;
  }
  return false; // Continuation bit set past 10 bytes.
}

constexpr uint8_t RecordFailedBit = 1u << 0;
constexpr uint8_t RecordHasStackBit = 1u << 1;

/// Encodes one normalized, ascending (id, count) list: count of nonzero
/// pairs, first id absolute, later ids as gaps to the predecessor.
void putPairs(std::string &Out,
              const std::vector<std::pair<uint32_t, uint32_t>> &Pairs) {
  size_t NumNonzero = 0;
  for (const auto &[Id, Count] : Pairs)
    NumNonzero += Count > 0 ? 1 : 0;
  putVarint(Out, NumNonzero);
  bool First = true;
  uint32_t Prev = 0;
  for (const auto &[Id, Count] : Pairs) {
    if (Count == 0)
      continue;
    putVarint(Out, First ? Id : Id - Prev);
    putVarint(Out, Count);
    Prev = Id;
    First = false;
  }
}

/// Validates the ReportSet sparse-list invariant before encoding: strictly
/// ascending ids below \p MaxId. Zero counts are legal input (dropped by
/// putPairs), unsorted or duplicate ids are corruption.
bool checkPairs(const std::vector<std::pair<uint32_t, uint32_t>> &Pairs,
                uint32_t MaxId, const char *What, std::string &Error) {
  for (size_t I = 0; I < Pairs.size(); ++I) {
    if (Pairs[I].first >= MaxId) {
      Error = format("%s id %u out of range (limit %u)", What,
                     Pairs[I].first, MaxId);
      return false;
    }
    if (I > 0 && Pairs[I].first <= Pairs[I - 1].first) {
      Error = format("%s ids not strictly ascending (%u after %u)", What,
                     Pairs[I].first, Pairs[I - 1].first);
      return false;
    }
  }
  return true;
}

} // namespace

// --- CorpusWriter ----------------------------------------------------------

CorpusWriter::~CorpusWriter() {
  if (Stream)
    std::fclose(Stream);
}

bool CorpusWriter::open(const std::string &ShardPath, uint32_t Id,
                        uint32_t Sites, uint32_t Predicates,
                        std::string &Error) {
  if (Stream) {
    Error = "writer already open";
    return false;
  }
  Stream = std::fopen(ShardPath.c_str(), "wb");
  if (!Stream) {
    Error = format("cannot create '%s'", ShardPath.c_str());
    return false;
  }
  Path = ShardPath;
  ShardId = Id;
  NumSites = Sites;
  NumPredicates = Predicates;
  NumReports = 0;
  BodyHash = Fnv1aBasis;
  RecordOffsets.clear();

  Scratch.clear();
  Scratch.append(CorpusMagic, sizeof(CorpusMagic));
  putU32(Scratch, CorpusVersion);
  putU32(Scratch, 0); // Flags.
  putU32(Scratch, ShardId);
  putU32(Scratch, NumSites);
  putU32(Scratch, NumPredicates);
  putU32(Scratch, 0); // Record count, patched by finalize().
  if (std::fwrite(Scratch.data(), 1, Scratch.size(), Stream) !=
      Scratch.size()) {
    Error = format("write error on '%s'", Path.c_str());
    std::fclose(Stream);
    Stream = nullptr;
    return false;
  }
  Offset = Scratch.size();
  return true;
}

bool CorpusWriter::append(const FeedbackReport &Report, std::string &Error) {
  if (!Stream) {
    Error = "writer not open";
    return false;
  }
  if (!checkPairs(Report.Counts.SiteObservations, NumSites, "site", Error) ||
      !checkPairs(Report.Counts.TruePredicates, NumPredicates, "predicate",
                  Error))
    return false;

  Scratch.clear();
  uint8_t Flags = (Report.Failed ? RecordFailedBit : 0) |
                  (Report.StackSignature.empty() ? 0 : RecordHasStackBit);
  Scratch += static_cast<char>(Flags);
  Scratch += static_cast<char>(static_cast<uint8_t>(Report.Trap));
  putVarint(Scratch, zigzagEncode(Report.ExitCode));
  putVarint(Scratch, Report.BugMask);
  if (!Report.StackSignature.empty()) {
    putVarint(Scratch, Report.StackSignature.size());
    Scratch += Report.StackSignature;
  }
  putPairs(Scratch, Report.Counts.SiteObservations);
  putPairs(Scratch, Report.Counts.TruePredicates);

  if (std::fwrite(Scratch.data(), 1, Scratch.size(), Stream) !=
      Scratch.size()) {
    Error = format("write error on '%s'", Path.c_str());
    return false;
  }
  RecordOffsets.push_back(Offset);
  BodyHash = fnv1a(BodyHash, Scratch.data(), Scratch.size());
  Offset += Scratch.size();
  ++NumReports;
  return true;
}

bool CorpusWriter::finalize(std::string &Error) {
  if (!Stream) {
    Error = "writer not open";
    return false;
  }
  Scratch.clear();
  for (uint64_t RecordOffset : RecordOffsets)
    putU64(Scratch, RecordOffset);
  putU64(Scratch, Offset); // Footer start == end of the record region.
  putU32(Scratch, NumReports);
  putU32(Scratch, BodyHash);
  Scratch.append(CorpusFooterMagic, sizeof(CorpusFooterMagic));

  bool Ok = std::fwrite(Scratch.data(), 1, Scratch.size(), Stream) ==
            Scratch.size();
  // Patch the record count into the header now that it is known.
  if (Ok) {
    std::string Count;
    putU32(Count, NumReports);
    Ok = std::fseek(Stream, 28, SEEK_SET) == 0 &&
         std::fwrite(Count.data(), 1, 4, Stream) == 4;
  }
  Ok = std::fclose(Stream) == 0 && Ok;
  Stream = nullptr;
  if (!Ok)
    Error = format("write error finalizing '%s'", Path.c_str());
  return Ok;
}

// --- CorpusReader ----------------------------------------------------------

bool CorpusReader::open(const std::string &Path, std::string &Error) {
  std::FILE *In = std::fopen(Path.c_str(), "rb");
  if (!In) {
    Error = format("cannot open '%s'", Path.c_str());
    return false;
  }
  std::string Bytes;
  char Buffer[1 << 16];
  size_t Got;
  while ((Got = std::fread(Buffer, 1, sizeof(Buffer), In)) > 0)
    Bytes.append(Buffer, Got);
  bool ReadOk = !std::ferror(In);
  std::fclose(In);
  if (!ReadOk) {
    Error = format("read error on '%s'", Path.c_str());
    return false;
  }

  auto reject = [&](const char *Why) {
    Error = format("'%s' is not a valid SBI-CORPUS v2 shard: %s",
                   Path.c_str(), Why);
    return false;
  };
  if (Bytes.size() < CorpusHeaderSize + CorpusTrailerSize)
    return reject("file shorter than header + trailer");
  if (std::memcmp(Bytes.data(), CorpusMagic, sizeof(CorpusMagic)) != 0)
    return reject("bad magic");
  if (readU32(Bytes.data() + 8) != CorpusVersion)
    return reject("unsupported version");

  CorpusShardHeader NewHeader;
  NewHeader.ShardId = readU32(Bytes.data() + 16);
  NewHeader.NumSites = readU32(Bytes.data() + 20);
  NewHeader.NumPredicates = readU32(Bytes.data() + 24);
  NewHeader.NumReports = readU32(Bytes.data() + 28);

  const char *Trailer = Bytes.data() + Bytes.size() - CorpusTrailerSize;
  if (std::memcmp(Trailer + 16, CorpusFooterMagic,
                  sizeof(CorpusFooterMagic)) != 0)
    return reject("bad footer magic (truncated shard?)");
  uint64_t NewFooterStart = readU64(Trailer);
  uint32_t FooterReports = readU32(Trailer + 8);
  uint32_t ExpectedHash = readU32(Trailer + 12);
  if (FooterReports != NewHeader.NumReports)
    return reject("header/footer record counts disagree");
  if (NewFooterStart < CorpusHeaderSize ||
      NewFooterStart + 8ull * FooterReports + CorpusTrailerSize !=
          Bytes.size())
    return reject("footer index does not match file size");
  if (fnv1a(Fnv1aBasis, Bytes.data() + CorpusHeaderSize,
            NewFooterStart - CorpusHeaderSize) != ExpectedHash)
    return reject("record region hash mismatch");

  std::vector<uint64_t> NewOffsets(FooterReports);
  for (uint32_t I = 0; I < FooterReports; ++I) {
    NewOffsets[I] = readU64(Bytes.data() + NewFooterStart + 8ull * I);
    uint64_t Lo = I == 0 ? CorpusHeaderSize : NewOffsets[I - 1];
    if (NewOffsets[I] < Lo || (I == 0 && NewOffsets[I] != CorpusHeaderSize) ||
        (I > 0 && NewOffsets[I] <= NewOffsets[I - 1]) ||
        NewOffsets[I] >= NewFooterStart)
      return reject("footer offsets out of order or out of bounds");
  }
  if (FooterReports == 0 && NewFooterStart != CorpusHeaderSize)
    return reject("empty shard with nonempty record region");

  Header = NewHeader;
  Data = std::move(Bytes);
  Offsets = std::move(NewOffsets);
  FooterStart = NewFooterStart;
  Cursor = 0;
  return true;
}

bool CorpusReader::seek(uint32_t Record) {
  if (Record > Header.NumReports)
    return false;
  Cursor = Record;
  return true;
}

namespace {

/// Sink materializing a full FeedbackReport (conversion paths).
struct ReportSink {
  FeedbackReport &Out;
  void begin(bool Failed, uint8_t Trap, int ExitCode, uint64_t BugMask,
             std::string_view Stack) {
    Out = FeedbackReport();
    Out.Failed = Failed;
    Out.Trap = static_cast<TrapKind>(Trap);
    Out.ExitCode = ExitCode;
    Out.BugMask = BugMask;
    Out.StackSignature.assign(Stack.data(), Stack.size());
  }
  void site(uint32_t Id, uint32_t Count) {
    Out.Counts.SiteObservations.emplace_back(Id, Count);
  }
  void pred(uint32_t Id, uint32_t Count) {
    Out.Counts.TruePredicates.emplace_back(Id, Count);
  }
};

/// Sink appending straight into a RunProfiles store (analysis ingestion).
struct ProfileSink {
  RunProfiles &Out;
  void begin(bool Failed, uint8_t, int, uint64_t BugMask, std::string_view) {
    Out.beginRun(Failed, BugMask);
  }
  void site(uint32_t Id, uint32_t) { Out.addSite(Id); }
  void pred(uint32_t Id, uint32_t) { Out.addPred(Id); }
};

} // namespace

template <typename Sink>
bool CorpusReader::decodeRecord(Sink &&Out, std::string &Error) {
  const uint32_t Record = Cursor;
  const uint64_t End =
      Record + 1 < Header.NumReports ? Offsets[Record + 1] : FooterStart;
  size_t Pos = Offsets[Record];
  std::string_view Bytes(Data.data(), End); // Hard stop at record boundary.

  auto reject = [&](const char *Why) {
    Error = format("shard %u record %u: %s", Header.ShardId, Record, Why);
    return false;
  };
  if (Pos + 2 > Bytes.size())
    return reject("truncated record head");
  uint8_t Flags = static_cast<uint8_t>(Bytes[Pos++]);
  uint8_t Trap = static_cast<uint8_t>(Bytes[Pos++]);
  uint64_t ExitRaw = 0, BugMask = 0;
  if (!readVarint(Bytes, Pos, ExitRaw) || !readVarint(Bytes, Pos, BugMask))
    return reject("bad exit-code or bug-mask varint");
  int64_t ExitCode = zigzagDecode(ExitRaw);
  if (ExitCode < INT32_MIN || ExitCode > INT32_MAX)
    return reject("exit code out of range");

  std::string_view Stack;
  if (Flags & RecordHasStackBit) {
    uint64_t Len = 0;
    if (!readVarint(Bytes, Pos, Len) || Len == 0 ||
        Len > Bytes.size() - Pos)
      return reject("bad stack-signature length");
    Stack = Bytes.substr(Pos, Len);
    Pos += Len;
  }
  Out.begin((Flags & RecordFailedBit) != 0, Trap,
            static_cast<int>(ExitCode), BugMask, Stack);

  auto decodePairs = [&](uint32_t MaxId, auto &&Emit, const char *What) {
    uint64_t Count = 0;
    if (!readVarint(Bytes, Pos, Count) || Count > MaxId) {
      Error = format("shard %u record %u: bad %s pair count",
                     Header.ShardId, Record, What);
      return false;
    }
    uint64_t Id = 0;
    for (uint64_t I = 0; I < Count; ++I) {
      uint64_t Delta = 0, Value = 0;
      if (!readVarint(Bytes, Pos, Delta) || !readVarint(Bytes, Pos, Value) ||
          (I > 0 && Delta == 0) || Value == 0 || Value > UINT32_MAX) {
        Error = format("shard %u record %u: bad %s pair encoding",
                       Header.ShardId, Record, What);
        return false;
      }
      Id = I == 0 ? Delta : Id + Delta;
      if (Id >= MaxId) {
        Error = format("shard %u record %u: %s id out of range",
                       Header.ShardId, Record, What);
        return false;
      }
      Emit(static_cast<uint32_t>(Id), static_cast<uint32_t>(Value));
    }
    return true;
  };
  if (!decodePairs(
          Header.NumSites,
          [&](uint32_t Id, uint32_t Count) { Out.site(Id, Count); }, "site"))
    return false;
  if (!decodePairs(
          Header.NumPredicates,
          [&](uint32_t Id, uint32_t Count) { Out.pred(Id, Count); },
          "predicate"))
    return false;
  if (Pos != End)
    return reject("record does not end at footer offset");
  ++Cursor;
  return true;
}

bool CorpusReader::next(FeedbackReport &Out, std::string &Error) {
  Error.clear();
  if (Cursor >= Header.NumReports)
    return false;
  return decodeRecord(ReportSink{Out}, Error);
}

bool CorpusReader::nextInto(RunProfiles &Out, std::string &Error) {
  Error.clear();
  if (Cursor >= Header.NumReports)
    return false;
  return decodeRecord(ProfileSink{Out}, Error);
}

// --- Directory-level helpers -----------------------------------------------

std::string sbi::corpusShardName(uint32_t ShardId) {
  return format("shard-%06u.sbic", ShardId);
}

std::vector<std::string> sbi::listCorpusShards(const std::string &Dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> Shards;
  std::error_code Ec;
  for (const fs::directory_entry &Entry : fs::directory_iterator(Dir, Ec)) {
    if (!Entry.is_regular_file(Ec))
      continue;
    std::string Name = Entry.path().filename().string();
    if (startsWith(Name, "shard-") && Name.size() > 11 &&
        Name.compare(Name.size() - 5, 5, ".sbic") == 0)
      Shards.push_back(Entry.path().string());
  }
  std::sort(Shards.begin(), Shards.end());
  return Shards;
}

bool sbi::writeCorpus(const ReportSet &Set, const std::string &Dir,
                      uint32_t ReportsPerShard, std::string &Error) {
  if (ReportsPerShard == 0) {
    Error = "reports-per-shard must be positive";
    return false;
  }
  namespace fs = std::filesystem;
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  if (Ec) {
    Error = format("cannot create directory '%s'", Dir.c_str());
    return false;
  }
  CorpusWriter Writer;
  uint32_t ShardId = 0;
  for (size_t Run = 0; Run < Set.size(); ++Run) {
    if (!Writer.isOpen()) {
      std::string Path = (fs::path(Dir) / corpusShardName(ShardId)).string();
      if (!Writer.open(Path, ShardId, Set.numSites(), Set.numPredicates(),
                       Error))
        return false;
      ++ShardId;
    }
    if (!Writer.append(Set[Run], Error))
      return false;
    if (Writer.reportsWritten() == ReportsPerShard &&
        !Writer.finalize(Error))
      return false;
  }
  if (Writer.isOpen() && !Writer.finalize(Error))
    return false;
  // An empty set still yields a readable corpus: one empty shard.
  if (Set.size() == 0) {
    std::string Path = (fs::path(Dir) / corpusShardName(0)).string();
    if (!Writer.open(Path, 0, Set.numSites(), Set.numPredicates(), Error) ||
        !Writer.finalize(Error))
      return false;
  }
  return true;
}

bool sbi::readCorpus(const std::string &Dir, ReportSet &Out,
                     std::string &Error) {
  std::vector<std::string> Shards = listCorpusShards(Dir);
  if (Shards.empty()) {
    Error = format("no shard-*.sbic files in '%s'", Dir.c_str());
    return false;
  }
  ReportSet Result;
  bool First = true;
  for (const std::string &Path : Shards) {
    CorpusReader Reader;
    if (!Reader.open(Path, Error))
      return false;
    if (First) {
      Result = ReportSet(Reader.header().NumSites,
                         Reader.header().NumPredicates);
      First = false;
    } else if (Reader.header().NumSites != Result.numSites() ||
               Reader.header().NumPredicates != Result.numPredicates()) {
      Error = format("'%s' disagrees on dimensions (%u sites / %u preds vs "
                     "%u / %u)",
                     Path.c_str(), Reader.header().NumSites,
                     Reader.header().NumPredicates, Result.numSites(),
                     Result.numPredicates());
      return false;
    }
    FeedbackReport Report;
    while (Reader.next(Report, Error))
      Result.add(std::move(Report));
    if (!Error.empty())
      return false;
  }
  Out = std::move(Result);
  return true;
}

bool sbi::ingestCorpus(const std::string &Dir, RunProfiles &Out,
                       size_t Threads, std::string &Error,
                       CorpusIngestStats *Stats) {
  ScopedPhase IngestPhase("corpus_ingest");
  // Span name mirrors the phase name (see obs/Tracer.h); per-shard child
  // spans below show decode skew across workers.
  ScopedSpan IngestSpan("corpus_ingest", "feedback");
  auto Start = std::chrono::steady_clock::now();

  std::vector<std::string> Shards = listCorpusShards(Dir);
  if (Shards.empty()) {
    Error = format("no shard-*.sbic files in '%s'", Dir.c_str());
    return false;
  }

  // One ingestion task per shard: each worker decodes whole shards into
  // private profiles; concatenation in filename order afterwards makes the
  // run numbering independent of the worker count.
  struct ShardResult {
    RunProfiles Profiles;
    std::string Error;
    uint64_t Bytes = 0;
  };
  std::vector<ShardResult> Results(Shards.size());
  std::atomic<size_t> NextShard{0};
  auto worker = [&] {
    for (size_t I = NextShard.fetch_add(1, std::memory_order_relaxed);
         I < Shards.size();
         I = NextShard.fetch_add(1, std::memory_order_relaxed)) {
      ShardResult &Result = Results[I];
      ScopedSpan ShardSpan("ingest_shard", "feedback");
      ShardSpan.arg("shard", I);
      CorpusReader Reader;
      if (!Reader.open(Shards[I], Result.Error))
        continue;
      Result.Bytes = Reader.shardBytes();
      Result.Profiles = RunProfiles(Reader.header().NumSites,
                                    Reader.header().NumPredicates);
      Result.Profiles.reserveRuns(Reader.header().NumReports);
      while (Reader.nextInto(Result.Profiles, Result.Error))
        ;
      ShardSpan.arg("reports", Result.Profiles.size());
    }
  };
  size_t Workers = resolveThreadCount(Threads, Shards.size());
  if (Workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Workers);
    for (size_t W = 0; W < Workers; ++W)
      Pool.emplace_back(worker);
    for (std::thread &Thread : Pool)
      Thread.join();
  }

  uint64_t TotalBytes = 0, TotalReports = 0;
  for (size_t I = 0; I < Results.size(); ++I) {
    if (!Results[I].Error.empty()) {
      Error = Results[I].Error;
      return false;
    }
    if (I > 0 && (Results[I].Profiles.numSites() !=
                      Results[0].Profiles.numSites() ||
                  Results[I].Profiles.numPredicates() !=
                      Results[0].Profiles.numPredicates())) {
      Error = format("'%s' disagrees on dimensions with '%s'",
                     Shards[I].c_str(), Shards[0].c_str());
      return false;
    }
    TotalBytes += Results[I].Bytes;
    TotalReports += Results[I].Profiles.size();
  }

  RunProfiles Merged(Results[0].Profiles.numSites(),
                     Results[0].Profiles.numPredicates());
  Merged.reserveRuns(TotalReports);
  for (ShardResult &Result : Results)
    Merged.append(std::move(Result.Profiles));
  Out = std::move(Merged);

  double Seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  if (Stats) {
    Stats->Shards = Shards.size();
    Stats->Reports = TotalReports;
    Stats->Bytes = TotalBytes;
    Stats->Seconds = Seconds;
  }
  if (Telemetry::enabled()) {
    MetricsRegistry &Metrics = Telemetry::metrics();
    static Counter &ShardsTotal =
        Metrics.registerCounter("corpus.ingest.shards_total");
    static Counter &ReportsTotal =
        Metrics.registerCounter("corpus.ingest.reports_total");
    static Counter &BytesTotal =
        Metrics.registerCounter("corpus.ingest.bytes_total");
    static Gauge &MbPerSec =
        Metrics.registerGauge("corpus.ingest.mb_per_sec");
    ShardsTotal.add(Shards.size());
    ReportsTotal.add(TotalReports);
    BytesTotal.add(TotalBytes);
    if (Seconds > 0.0)
      MbPerSec.set(static_cast<double>(TotalBytes) / 1e6 / Seconds);
  }
  return true;
}
