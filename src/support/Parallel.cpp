//===- support/Parallel.cpp - Worker-thread helpers -----------------------===//

#include "support/Parallel.h"

#include <algorithm>
#include <thread>

using namespace sbi;

size_t sbi::hardwareThreadCount() {
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

size_t sbi::resolveThreadCount(size_t Requested, size_t MaxUseful) {
  size_t Threads = Requested == 0 ? hardwareThreadCount() : Requested;
  return std::min(Threads, std::max<size_t>(1, MaxUseful));
}
