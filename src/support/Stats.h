//===- support/Stats.h - Statistical primitives for bug isolation --------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statistical building blocks used by the cause-isolation algorithm of
/// Section 3: binomial proportion estimates with confidence intervals, the
/// two-proportion Z statistic of the likelihood-ratio view (Section 3.2),
/// and the delta-method confidence interval for the harmonic-mean Importance
/// score (Section 3.3).
///
//===----------------------------------------------------------------------===//

#ifndef SBI_SUPPORT_STATS_H
#define SBI_SUPPORT_STATS_H

#include <cstdint>

namespace sbi {

/// The standard normal quantile for two-sided 95% intervals.
inline constexpr double Z95 = 1.959963984540054;

/// A binomial proportion Successes/Trials with helpers for interval
/// estimation. Trials == 0 yields a value of 0 and an infinite-width
/// interval surrogate (variance 0 by convention; callers must check).
struct Proportion {
  uint64_t Successes = 0;
  uint64_t Trials = 0;

  double value() const {
    return Trials == 0 ? 0.0
                       : static_cast<double>(Successes) /
                             static_cast<double>(Trials);
  }

  /// Wald sampling variance p(1-p)/n; 0 when there are no trials.
  double variance() const;
};

/// Returns the standard normal CDF Phi(X).
double normalCdf(double X);

/// Returns the inverse standard normal CDF (Acklam's rational approximation,
/// good to ~1e-9 absolute error). Out-of-domain inputs take the limits
/// deliberately — -infinity for P <= 0, +infinity for P >= 1, NaN for NaN —
/// in every build type (the guard is explicit code, not an assert, so it
/// survives NDEBUG).
double normalQuantile(double P);

/// The two-proportion Z statistic of Section 3.2: tests H0: pf == ps against
/// H1: pf > ps where \p Pf and \p Ps are the heads-probability estimates for
/// failing and successful runs. Returns 0 when both variances vanish.
double twoProportionZ(const Proportion &Pf, const Proportion &Ps);

/// A score together with the half-width of its 95% confidence interval.
struct ScoreInterval {
  double Value = 0.0;
  double HalfWidth = 0.0;

  double lowerBound() const { return Value - HalfWidth; }
  double upperBound() const { return Value + HalfWidth; }
};

/// Confidence interval for a difference of two proportions (used for
/// Increase(P) = Failure(P) - Context(P)). Wald interval on the difference;
/// conservative because Failure and Context share observations.
ScoreInterval differenceInterval(const Proportion &A, const Proportion &B);

/// Delta-method 95% confidence interval for the harmonic mean
/// H = 2/(1/X + 1/Y) given the two component estimates and their sampling
/// variances. Degenerate inputs (nonpositive X or Y) yield {0, 0}.
ScoreInterval harmonicMeanInterval(double X, double VarX, double Y,
                                   double VarY);

/// Natural logarithm clamped so that log(0) and log of tiny values do not
/// produce -inf; used for the log-transformed sensitivity term.
double safeLog(double X);

} // namespace sbi

#endif // SBI_SUPPORT_STATS_H
