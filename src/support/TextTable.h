//===- support/TextTable.h - Aligned text-table rendering ----------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal column-aligned table printer used by the experiment harness to
/// reproduce the paper's Tables 1-9 as plain text.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_SUPPORT_TEXTTABLE_H
#define SBI_SUPPORT_TEXTTABLE_H

#include <string>
#include <vector>

namespace sbi {

/// Column-aligned table builder. Columns are sized to fit their widest cell;
/// numeric-looking cells are right-aligned, everything else left-aligned.
class TextTable {
public:
  /// Sets the header row.
  void setHeader(std::vector<std::string> Names);

  /// Appends a data row; short rows are padded with empty cells.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator line.
  void addSeparator();

  /// Renders the full table, each line terminated by '\n'.
  std::string render() const;

  size_t numRows() const { return Rows.size(); }

private:
  struct Row {
    std::vector<std::string> Cells;
    bool IsSeparator = false;
  };

  std::vector<std::string> Header;
  std::vector<Row> Rows;
};

} // namespace sbi

#endif // SBI_SUPPORT_TEXTTABLE_H
