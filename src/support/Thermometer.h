//===- support/Thermometer.h - Text rendering of bug thermometers --------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper visualizes each ranked predicate with a "bug thermometer"
/// (Section 3.3): a bar whose length is logarithmic in the number of runs in
/// which the predicate was observed, divided into four bands:
///
///   - black  ('#'): Context(P), as a fraction of the bar;
///   - dark   ('='): the lower bound of Increase(P) at 95% confidence;
///   - light  ('~'): the width of that confidence interval;
///   - white  (' '): the remainder, dominated by S(P).
///
/// This header renders the same visualization in plain ASCII.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_SUPPORT_THERMOMETER_H
#define SBI_SUPPORT_THERMOMETER_H

#include <cstdint>
#include <string>

namespace sbi {

/// The band widths of one thermometer, all in [0, 1] and summing to <= 1.
struct ThermometerSpec {
  /// Context(P): probability of failure merely on reaching P's site.
  double Context = 0.0;
  /// Lower bound of the 95% interval on Increase(P), clamped at 0.
  double IncreaseLowerBound = 0.0;
  /// Width of that confidence interval (upper minus lower bound).
  double ConfidenceWidth = 0.0;
  /// Number of runs in which P was observed true (F(P) + S(P)); sets the
  /// logarithmic total length of the bar.
  uint64_t RunsObservedTrue = 0;
};

/// Renders \p Spec as an ASCII bar like "[###====~     ]". \p MaxWidth is
/// the bar length (excluding brackets) used for the largest run count seen
/// in a table; \p MaxRuns is that largest count (log scaling reference).
std::string renderThermometer(const ThermometerSpec &Spec, size_t MaxWidth,
                              uint64_t MaxRuns);

} // namespace sbi

#endif // SBI_SUPPORT_THERMOMETER_H
