//===- support/StringUtils.cpp - Small string helpers --------------------===//

#include "support/StringUtils.h"

#include <charconv>
#include <cstdarg>
#include <cstdio>

using namespace sbi;

std::string sbi::format(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Needed < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Result(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}

std::vector<std::string> sbi::splitString(std::string_view Text,
                                          char Separator) {
  std::vector<std::string> Pieces;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Separator, Start);
    if (Pos == std::string_view::npos) {
      Pieces.emplace_back(Text.substr(Start));
      return Pieces;
    }
    Pieces.emplace_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string sbi::joinStrings(const std::vector<std::string> &Pieces,
                             std::string_view Separator) {
  std::string Result;
  for (size_t I = 0; I < Pieces.size(); ++I) {
    if (I != 0)
      Result += Separator;
    Result += Pieces[I];
  }
  return Result;
}

std::string sbi::padRight(std::string_view Text, size_t Width) {
  std::string Result(Text.substr(0, Width));
  Result.resize(Width, ' ');
  return Result;
}

std::string sbi::padLeft(std::string_view Text, size_t Width) {
  if (Text.size() >= Width)
    return std::string(Text);
  return std::string(Width - Text.size(), ' ') + std::string(Text);
}

bool sbi::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.substr(0, Prefix.size()) == Prefix;
}

bool sbi::parseUnsigned(std::string_view Text, uint64_t &Out) {
  // from_chars already rejects leading whitespace and '+'; a '-' would
  // otherwise wrap ("-1" -> 2^64-1) under some libc strtoull paths, so it
  // is excluded explicitly along with everything else that is not a digit.
  if (Text.empty())
    return false;
  uint64_t Value = 0;
  const char *First = Text.data(), *Last = Text.data() + Text.size();
  std::from_chars_result Result = std::from_chars(First, Last, Value, 10);
  if (Result.ec != std::errc() || Result.ptr != Last)
    return false;
  Out = Value;
  return true;
}
