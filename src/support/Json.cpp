//===- support/Json.cpp - Minimal JSON tree parser ------------------------===//

#include "support/Json.h"

#include "support/StringUtils.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

using namespace sbi;
using namespace sbi::json;

Value Value::makeBool(bool V) {
  Value Out;
  Out.K = Kind::Bool;
  Out.B = V;
  return Out;
}

Value Value::makeNumber(double V) {
  Value Out;
  Out.K = Kind::Number;
  Out.Num = V;
  // A double that is integral and round-trips through int64 is exact.
  if (V >= -9.2233720368547758e18 && V <= 9.2233720368547758e18 &&
      std::nearbyint(V) == V) {
    Out.Int = static_cast<int64_t>(V);
    Out.IntExact = static_cast<double>(Out.Int) == V;
  }
  return Out;
}

Value Value::makeInteger(int64_t V) {
  Value Out;
  Out.K = Kind::Number;
  Out.Num = static_cast<double>(V);
  Out.Int = V;
  Out.IntExact = true;
  return Out;
}

Value Value::makeString(std::string V) {
  Value Out;
  Out.K = Kind::String;
  Out.Str = std::move(V);
  return Out;
}

Value Value::makeArray(std::vector<Value> V) {
  Value Out;
  Out.K = Kind::Array;
  Out.Arr = std::move(V);
  return Out;
}

Value Value::makeObject(std::vector<Member> V) {
  Value Out;
  Out.K = Kind::Object;
  Out.Obj = std::move(V);
  return Out;
}

const Value *Value::find(std::string_view Name) const {
  if (K != Kind::Object)
    return nullptr;
  for (const Member &M : Obj)
    if (M.first == Name)
      return &M.second;
  return nullptr;
}

double Value::numberOr(std::string_view Name, double Default) const {
  const Value *V = find(Name);
  return V && V->isNumber() ? V->asNumber() : Default;
}

std::string Value::stringOr(std::string_view Name,
                            std::string Default) const {
  const Value *V = find(Name);
  return V && V->isString() ? V->asString() : Default;
}

namespace {

class Parser {
public:
  Parser(std::string_view Text, std::string &Error)
      : Text(Text), Error(Error) {}

  bool parseDocument(Value &Out) {
    skipWs();
    if (!parseValue(Out, /*Depth=*/0))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after JSON value");
    return true;
  }

private:
  static constexpr int MaxDepth = 128;

  bool fail(const char *Reason) {
    Error = format("offset %zu: %s", Pos, Reason);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C != ' ' && C != '\t' && C != '\n' && C != '\r')
        break;
      ++Pos;
    }
  }

  bool consume(char C, const char *What) {
    if (Pos >= Text.size() || Text[Pos] != C)
      return fail(What);
    ++Pos;
    return true;
  }

  bool literal(std::string_view Word, const char *What) {
    if (Text.substr(Pos, Word.size()) != Word)
      return fail(What);
    Pos += Word.size();
    return true;
  }

  bool parseValue(Value &Out, int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Value::makeString(std::move(S));
      return true;
    }
    case 't':
      if (!literal("true", "expected 'true'"))
        return false;
      Out = Value::makeBool(true);
      return true;
    case 'f':
      if (!literal("false", "expected 'false'"))
        return false;
      Out = Value::makeBool(false);
      return true;
    case 'n':
      if (!literal("null", "expected 'null'"))
        return false;
      Out = Value::makeNull();
      return true;
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(Value &Out, int Depth) {
    ++Pos; // '{'
    std::vector<Member> Members;
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      Out = Value::makeObject(std::move(Members));
      return true;
    }
    while (true) {
      skipWs();
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (!consume(':', "expected ':' after object key"))
        return false;
      skipWs();
      Value V;
      if (!parseValue(V, Depth + 1))
        return false;
      Members.emplace_back(std::move(Key), std::move(V));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated object");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        Out = Value::makeObject(std::move(Members));
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(Value &Out, int Depth) {
    ++Pos; // '['
    std::vector<Value> Elems;
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      Out = Value::makeArray(std::move(Elems));
      return true;
    }
    while (true) {
      skipWs();
      Value V;
      if (!parseValue(V, Depth + 1))
        return false;
      Elems.push_back(std::move(V));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated array");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        Out = Value::makeArray(std::move(Elems));
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool hex4(uint32_t &Out) {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape");
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      char C = Text[Pos++];
      uint32_t Digit;
      if (C >= '0' && C <= '9')
        Digit = static_cast<uint32_t>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Digit = static_cast<uint32_t>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Digit = static_cast<uint32_t>(C - 'A' + 10);
      else
        return fail("bad hex digit in \\u escape");
      Out = Out * 16 + Digit;
    }
    return true;
  }

  static void appendUtf8(std::string &Out, uint32_t Cp) {
    if (Cp < 0x80) {
      Out += static_cast<char>(Cp);
    } else if (Cp < 0x800) {
      Out += static_cast<char>(0xc0 | (Cp >> 6));
      Out += static_cast<char>(0x80 | (Cp & 0x3f));
    } else if (Cp < 0x10000) {
      Out += static_cast<char>(0xe0 | (Cp >> 12));
      Out += static_cast<char>(0x80 | ((Cp >> 6) & 0x3f));
      Out += static_cast<char>(0x80 | (Cp & 0x3f));
    } else {
      Out += static_cast<char>(0xf0 | (Cp >> 18));
      Out += static_cast<char>(0x80 | ((Cp >> 12) & 0x3f));
      Out += static_cast<char>(0x80 | ((Cp >> 6) & 0x3f));
      Out += static_cast<char>(0x80 | (Cp & 0x3f));
    }
  }

  bool parseString(std::string &Out) {
    if (!consume('"', "expected '\"'"))
      return false;
    Out.clear();
    while (true) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        uint32_t Cp;
        if (!hex4(Cp))
          return false;
        // Surrogate pair: a high surrogate must be followed by \uDC00..DFFF.
        if (Cp >= 0xd800 && Cp <= 0xdbff) {
          if (Text.substr(Pos, 2) != "\\u")
            return fail("lone high surrogate");
          Pos += 2;
          uint32_t Low;
          if (!hex4(Low))
            return false;
          if (Low < 0xdc00 || Low > 0xdfff)
            return fail("bad low surrogate");
          Cp = 0x10000 + ((Cp - 0xd800) << 10) + (Low - 0xdc00);
        } else if (Cp >= 0xdc00 && Cp <= 0xdfff) {
          return fail("lone low surrogate");
        }
        appendUtf8(Out, Cp);
        break;
      }
      default:
        return fail("bad escape character");
      }
    }
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    auto digits = [&] {
      size_t N = 0;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9') {
        ++Pos;
        ++N;
      }
      return N;
    };
    if (Pos < Text.size() && Text[Pos] == '0') {
      ++Pos; // Leading zero must stand alone.
      if (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        return fail("leading zero in number");
    } else if (digits() == 0) {
      return fail("expected a value");
    }
    bool Integral = true;
    if (Pos < Text.size() && Text[Pos] == '.') {
      Integral = false;
      ++Pos;
      if (digits() == 0)
        return fail("expected digits after decimal point");
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      Integral = false;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (digits() == 0)
        return fail("expected digits in exponent");
    }
    std::string Literal(Text.substr(Start, Pos - Start));
    if (Integral) {
      errno = 0;
      char *End = nullptr;
      long long V = std::strtoll(Literal.c_str(), &End, 10);
      if (errno == 0 && End && *End == '\0') {
        Out = Value::makeInteger(static_cast<int64_t>(V));
        return true;
      }
      // Out-of-int64-range integers degrade to double below.
    }
    errno = 0;
    char *End = nullptr;
    double V = std::strtod(Literal.c_str(), &End);
    if (!End || *End != '\0')
      return fail("malformed number");
    Out = Value::makeNumber(V);
    return true;
  }

  std::string_view Text;
  std::string &Error;
  size_t Pos = 0;
};

} // namespace

bool sbi::json::parse(std::string_view Text, Value &Out,
                      std::string &Error) {
  Error.clear();
  return Parser(Text, Error).parseDocument(Out);
}
