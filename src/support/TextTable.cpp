//===- support/TextTable.cpp - Aligned text-table rendering --------------===//

#include "support/TextTable.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cctype>

using namespace sbi;

void TextTable::setHeader(std::vector<std::string> Names) {
  Header = std::move(Names);
}

void TextTable::addRow(std::vector<std::string> Cells) {
  Rows.push_back({std::move(Cells), /*IsSeparator=*/false});
}

void TextTable::addSeparator() { Rows.push_back({{}, /*IsSeparator=*/true}); }

static bool looksNumeric(const std::string &Cell) {
  if (Cell.empty())
    return false;
  size_t Digits = 0;
  for (char C : Cell) {
    if (std::isdigit(static_cast<unsigned char>(C)))
      ++Digits;
    else if (C != '.' && C != '-' && C != '+' && C != '%' && C != ',' &&
             C != 'e' && C != 'E')
      return false;
  }
  return Digits > 0;
}

std::string TextTable::render() const {
  size_t NumColumns = Header.size();
  for (const Row &R : Rows)
    NumColumns = std::max(NumColumns, R.Cells.size());

  std::vector<size_t> Widths(NumColumns, 0);
  for (size_t I = 0; I < Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const Row &R : Rows)
    for (size_t I = 0; I < R.Cells.size(); ++I)
      Widths[I] = std::max(Widths[I], R.Cells[I].size());

  auto renderRow = [&](const std::vector<std::string> &Cells) {
    std::string Line;
    for (size_t I = 0; I < NumColumns; ++I) {
      if (I != 0)
        Line += "  ";
      const std::string &Cell = I < Cells.size() ? Cells[I] : std::string();
      Line += looksNumeric(Cell) ? padLeft(Cell, Widths[I])
                                 : padRight(Cell, Widths[I]);
    }
    // Trim trailing spaces so output diffs cleanly.
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    return Line + "\n";
  };

  size_t TotalWidth = 0;
  for (size_t W : Widths)
    TotalWidth += W;
  TotalWidth += NumColumns > 1 ? 2 * (NumColumns - 1) : 0;

  std::string Result;
  if (!Header.empty()) {
    Result += renderRow(Header);
    Result += std::string(TotalWidth, '-') + "\n";
  }
  for (const Row &R : Rows) {
    if (R.IsSeparator)
      Result += std::string(TotalWidth, '-') + "\n";
    else
      Result += renderRow(R.Cells);
  }
  return Result;
}
