//===- support/Parallel.h - Worker-thread helpers -------------------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the "0 means one worker per hardware thread"
/// convention used by the campaign driver and the inverted-index builder.
/// std::thread::hardware_concurrency() is allowed to return 0 when the
/// value is not computable; every caller must treat that as 1 so no
/// parallel loop ever launches zero workers.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_SUPPORT_PARALLEL_H
#define SBI_SUPPORT_PARALLEL_H

#include <cstddef>

namespace sbi {

/// Number of hardware threads, never less than 1.
size_t hardwareThreadCount();

/// Resolves a user-facing thread-count option: 0 means "one per hardware
/// thread"; the result is additionally capped at \p MaxUseful (the number
/// of independent work items) and is always at least 1.
size_t resolveThreadCount(size_t Requested, size_t MaxUseful);

} // namespace sbi

#endif // SBI_SUPPORT_PARALLEL_H
