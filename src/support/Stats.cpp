//===- support/Stats.cpp - Statistical primitives for bug isolation ------===//

#include "support/Stats.h"

#include <cmath>
#include <limits>

using namespace sbi;

double Proportion::variance() const {
  if (Trials == 0)
    return 0.0;
  double P = value();
  return P * (1.0 - P) / static_cast<double>(Trials);
}

double sbi::normalCdf(double X) { return 0.5 * std::erfc(-X / std::sqrt(2.0)); }

double sbi::normalQuantile(double P) {
  // Explicit domain guard rather than an assert: the default RelWithDebInfo
  // build defines NDEBUG, so an assert here is compiled out exactly where
  // callers run — P = 0 would then feed log(0) into the tail branch and
  // return garbage instead of the documented limit. The quantile's true
  // limits are well-defined, so return them (and propagate NaN).
  if (std::isnan(P))
    return P;
  if (P <= 0.0)
    return -std::numeric_limits<double>::infinity();
  if (P >= 1.0)
    return std::numeric_limits<double>::infinity();
  // Acklam's rational approximation to the inverse normal CDF.
  static const double A[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double B[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double C[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double D[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double PLow = 0.02425;

  if (P < PLow) {
    double Q = std::sqrt(-2.0 * std::log(P));
    return (((((C[0] * Q + C[1]) * Q + C[2]) * Q + C[3]) * Q + C[4]) * Q +
            C[5]) /
           ((((D[0] * Q + D[1]) * Q + D[2]) * Q + D[3]) * Q + 1.0);
  }
  if (P <= 1.0 - PLow) {
    double Q = P - 0.5;
    double R = Q * Q;
    return (((((A[0] * R + A[1]) * R + A[2]) * R + A[3]) * R + A[4]) * R +
            A[5]) *
           Q /
           (((((B[0] * R + B[1]) * R + B[2]) * R + B[3]) * R + B[4]) * R + 1.0);
  }
  double Q = std::sqrt(-2.0 * std::log(1.0 - P));
  return -(((((C[0] * Q + C[1]) * Q + C[2]) * Q + C[3]) * Q + C[4]) * Q +
           C[5]) /
         ((((D[0] * Q + D[1]) * Q + D[2]) * Q + D[3]) * Q + 1.0);
}

double sbi::twoProportionZ(const Proportion &Pf, const Proportion &Ps) {
  double Var = Pf.variance() + Ps.variance();
  if (Var <= 0.0)
    return 0.0;
  return (Pf.value() - Ps.value()) / std::sqrt(Var);
}

ScoreInterval sbi::differenceInterval(const Proportion &A,
                                      const Proportion &B) {
  ScoreInterval Result;
  Result.Value = A.value() - B.value();
  Result.HalfWidth = Z95 * std::sqrt(A.variance() + B.variance());
  return Result;
}

ScoreInterval sbi::harmonicMeanInterval(double X, double VarX, double Y,
                                        double VarY) {
  if (X <= 0.0 || Y <= 0.0)
    return {0.0, 0.0};
  double H = 2.0 / (1.0 / X + 1.0 / Y);
  // dH/dX = 2 Y^2 / (X + Y)^2, dH/dY symmetric; first-order delta method.
  double Sum = X + Y;
  double DX = 2.0 * Y * Y / (Sum * Sum);
  double DY = 2.0 * X * X / (Sum * Sum);
  double Var = DX * DX * VarX + DY * DY * VarY;
  return {H, Z95 * std::sqrt(Var)};
}

double sbi::safeLog(double X) {
  const double Floor = 1e-12;
  return std::log(X < Floor ? Floor : X);
}
