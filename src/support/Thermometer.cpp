//===- support/Thermometer.cpp - Text rendering of bug thermometers ------===//

#include "support/Thermometer.h"

#include <algorithm>
#include <cmath>

using namespace sbi;

std::string sbi::renderThermometer(const ThermometerSpec &Spec,
                                   size_t MaxWidth, uint64_t MaxRuns) {
  // Total bar length is logarithmic in the observed-true run count, scaled
  // so the most-observed predicate in the table fills MaxWidth cells.
  double LogMax = std::log1p(static_cast<double>(MaxRuns));
  double LogThis = std::log1p(static_cast<double>(Spec.RunsObservedTrue));
  size_t Length =
      LogMax <= 0.0
          ? 0
          : static_cast<size_t>(std::lround(MaxWidth * LogThis / LogMax));
  Length = std::min(Length, MaxWidth);
  if (Spec.RunsObservedTrue > 0)
    Length = std::max<size_t>(Length, 1);

  auto cells = [&](double Fraction) {
    Fraction = std::clamp(Fraction, 0.0, 1.0);
    return static_cast<size_t>(std::lround(Fraction * Length));
  };

  size_t ContextCells = cells(Spec.Context);
  size_t IncreaseCells = cells(Spec.IncreaseLowerBound);
  size_t ConfidenceCells = cells(Spec.ConfidenceWidth);
  // Clamp so the bands never overflow the bar.
  ContextCells = std::min(ContextCells, Length);
  IncreaseCells = std::min(IncreaseCells, Length - ContextCells);
  ConfidenceCells =
      std::min(ConfidenceCells, Length - ContextCells - IncreaseCells);

  std::string Bar;
  Bar += '[';
  Bar.append(ContextCells, '#');
  Bar.append(IncreaseCells, '=');
  Bar.append(ConfidenceCells, '~');
  Bar.append(Length - ContextCells - IncreaseCells - ConfidenceCells, ' ');
  Bar.append(MaxWidth - Length, ' ');
  Bar += ']';
  return Bar;
}
