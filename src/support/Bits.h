//===- support/Bits.h - Portable 64-bit word primitives -------------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bit-matrix aggregation engine (core/BitMatrix.h) counts F(P)/S(P)
/// by AND-ing 64-run words and popcounting the result, so its hot loop is
/// exactly two primitives: population count and count-trailing-zeros.
/// These shims pin down one portable definition of each:
///
///   * popcount64(W)     number of set bits in W.
///   * countr_zero64(W)  index of the lowest set bit; 64 for W == 0
///                       (mirroring std::countr_zero, not the undefined
///                       __builtin_ctzll(0)).
///
/// When the compilation target has the native instruction (__POPCNT__,
/// AArch64) popcount64 compiles to the __builtin intrinsic. Otherwise it
/// is a hand-inlined SWAR reduction: on baseline x86-64, GCC lowers
/// __builtin_popcountll to a libgcc *call* per word, which is ruinous at
/// one call per swept matrix word. No -march flags are assumed and the
/// results are identical everywhere; hot kernels that want the hardware
/// instruction on capable CPUs despite a baseline build do their own
/// runtime dispatch (see core/BitMatrix.cpp). The generic fallback is a
/// pure-C++20 std::<bit> call.
///
/// Word-span helpers (popcountWords, andPopcount) live in Bits.cpp; they
/// are convenience entry points for cold callers and tests — the kernels
/// in core/BitMatrix.cpp keep their loops local so the compiler can fuse
/// AND + popcount + accumulate without a call boundary.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_SUPPORT_BITS_H
#define SBI_SUPPORT_BITS_H

#include <bit>
#include <cstddef>
#include <cstdint>

namespace sbi {

/// Number of set bits in \p Word.
inline int popcount64(uint64_t Word) {
#if (defined(__GNUC__) || defined(__clang__)) &&                             \
    (defined(__POPCNT__) || defined(__aarch64__))
  return __builtin_popcountll(Word);
#elif defined(__GNUC__) || defined(__clang__)
  // SWAR bit-sliced reduction, always inlined: without __POPCNT__ the
  // builtin is a libgcc call on x86-64.
  Word -= (Word >> 1) & 0x5555555555555555ULL;
  Word = (Word & 0x3333333333333333ULL) +
         ((Word >> 2) & 0x3333333333333333ULL);
  Word = (Word + (Word >> 4)) & 0x0F0F0F0F0F0F0F0FULL;
  return static_cast<int>((Word * 0x0101010101010101ULL) >> 56);
#else
  return std::popcount(Word);
#endif
}

/// Index of the lowest set bit of \p Word; 64 when \p Word is zero.
inline int countr_zero64(uint64_t Word) {
#if defined(__GNUC__) || defined(__clang__)
  return Word == 0 ? 64 : __builtin_ctzll(Word);
#else
  return std::countr_zero(Word);
#endif
}

/// Sum of popcount64 over \p Words[0..NumWords).
uint64_t popcountWords(const uint64_t *Words, size_t NumWords);

/// Sum of popcount64(A[I] & B[I]) over [0, NumWords) — the F(P)/S(P)
/// counting primitive: predicate-row words AND a run-mask.
uint64_t andPopcount(const uint64_t *A, const uint64_t *B, size_t NumWords);

} // namespace sbi

#endif // SBI_SUPPORT_BITS_H
