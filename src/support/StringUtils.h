//===- support/StringUtils.h - Small string helpers ----------------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style formatting into std::string plus the handful of splitting
/// and padding helpers the table renderers need. GCC 12 lacks std::format,
/// so a checked vsnprintf wrapper stands in.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_SUPPORT_STRINGUTILS_H
#define SBI_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sbi {

/// printf-style formatting that returns a std::string.
std::string format(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits \p Text on \p Separator; adjacent separators yield empty pieces.
std::vector<std::string> splitString(std::string_view Text, char Separator);

/// Joins \p Pieces with \p Separator between consecutive elements.
std::string joinStrings(const std::vector<std::string> &Pieces,
                        std::string_view Separator);

/// Pads or truncates \p Text on the right to exactly \p Width columns.
std::string padRight(std::string_view Text, size_t Width);

/// Pads \p Text on the left to at least \p Width columns.
std::string padLeft(std::string_view Text, size_t Width);

/// True if \p Text begins with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// Strict base-10 unsigned parse: the entire input must be digits and the
/// value must fit in 64 bits. Unlike strtoull, rejects empty strings,
/// leading signs/whitespace, trailing garbage ("123abc"), and overflow
/// instead of silently yielding 0 or a wrapped value. On success writes
/// \p Out and returns true; on failure \p Out is untouched.
bool parseUnsigned(std::string_view Text, uint64_t &Out);

} // namespace sbi

#endif // SBI_SUPPORT_STRINGUTILS_H
