//===- support/Random.h - Seeded pseudo-random number generation ---------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, seedable PRNG (xoshiro256**) used everywhere randomness is
/// needed: subject-program input generation, Bernoulli instrumentation
/// sampling, and the per-run memory-padding draw that makes buffer overruns
/// non-deterministic. Determinism under a fixed seed is a hard requirement
/// for reproducible experiments, so std::mt19937 (whose distributions are
/// not portable across standard libraries) is deliberately avoided.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_SUPPORT_RANDOM_H
#define SBI_SUPPORT_RANDOM_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sbi {

/// Deterministic xoshiro256** generator seeded via SplitMix64.
class Rng {
public:
  explicit Rng(uint64_t Seed) { reseed(Seed); }

  /// Re-initializes the state from \p Seed (SplitMix64 expansion).
  void reseed(uint64_t Seed);

  /// Returns the next 64 uniformly random bits.
  uint64_t next();

  /// Returns a uniform integer in [0, Bound). \p Bound must be positive.
  /// Uses Lemire's nearly-divisionless bounded rejection method.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Returns a uniform double in [0, 1).
  double nextDouble();

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBernoulli(double P);

  /// Returns a geometric "countdown" sample: the number of further trials to
  /// skip before the next success of a Bernoulli(\p P) process. A return of
  /// 0 means the very next trial is sampled. Used by the sparse-sampling
  /// transformation's fast path (Section 2 of the paper).
  uint64_t nextGeometricSkip(double P);

  /// Fisher-Yates shuffles \p Items in place.
  template <typename T> void shuffle(std::vector<T> &Items) {
    for (size_t I = Items.size(); I > 1; --I)
      std::swap(Items[I - 1], Items[nextBelow(I)]);
  }

  /// Derives an independent child generator; used to give each program run
  /// its own stream so that runs are reproducible in isolation.
  Rng split();

private:
  uint64_t State[4];
};

} // namespace sbi

#endif // SBI_SUPPORT_RANDOM_H
