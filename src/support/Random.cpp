//===- support/Random.cpp - Seeded pseudo-random number generation -------===//

#include "support/Random.h"

#include <cmath>

using namespace sbi;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

void Rng::reseed(uint64_t Seed) {
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitMix64(S);
  // xoshiro requires a nonzero state; SplitMix64 only yields all-zero words
  // with negligible probability, but guard anyway.
  if (!(State[0] | State[1] | State[2] | State[3]))
    State[0] = 1;
}

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound > 0 && "nextBelow requires a positive bound");
  // Lemire's method: multiply-shift with a rejection step to remove bias.
  uint64_t X = next();
  __uint128_t M = static_cast<__uint128_t>(X) * Bound;
  uint64_t Lo = static_cast<uint64_t>(M);
  if (Lo < Bound) {
    uint64_t Threshold = -Bound % Bound;
    while (Lo < Threshold) {
      X = next();
      M = static_cast<__uint128_t>(X) * Bound;
      Lo = static_cast<uint64_t>(M);
    }
  }
  return static_cast<uint64_t>(M >> 64);
}

int64_t Rng::nextInRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  uint64_t Span = static_cast<uint64_t>(Hi) - static_cast<uint64_t>(Lo) + 1;
  if (Span == 0) // Whole 64-bit range.
    return static_cast<int64_t>(next());
  return static_cast<int64_t>(static_cast<uint64_t>(Lo) + nextBelow(Span));
}

double Rng::nextDouble() {
  // 53 uniformly random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::nextBernoulli(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return nextDouble() < P;
}

uint64_t Rng::nextGeometricSkip(double P) {
  if (P >= 1.0)
    return 0;
  if (P <= 0.0)
    return UINT64_MAX;
  double U = nextDouble();
  // Inverse-CDF sampling of the number of failures before the first success.
  double Skip = std::floor(std::log1p(-U) / std::log1p(-P));
  if (Skip >= 9.0e18)
    return UINT64_MAX;
  return static_cast<uint64_t>(Skip);
}

Rng Rng::split() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }
