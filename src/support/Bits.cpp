//===- support/Bits.cpp - Portable 64-bit word primitives -----------------===//

#include "support/Bits.h"

using namespace sbi;

uint64_t sbi::popcountWords(const uint64_t *Words, size_t NumWords) {
  uint64_t Count = 0;
  for (size_t I = 0; I < NumWords; ++I)
    Count += static_cast<uint64_t>(popcount64(Words[I]));
  return Count;
}

uint64_t sbi::andPopcount(const uint64_t *A, const uint64_t *B,
                          size_t NumWords) {
  uint64_t Count = 0;
  for (size_t I = 0; I < NumWords; ++I)
    Count += static_cast<uint64_t>(popcount64(A[I] & B[I]));
  return Count;
}
