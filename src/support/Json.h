//===- support/Json.h - Minimal JSON tree parser --------------------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent JSON parser producing an owned value tree.
/// The observability tools consume their own machine-readable outputs —
/// the metrics registry (`--metrics-out`), Chrome trace_event files
/// (`--trace-out`, `sbi trace summarize`), and the BENCH_*.json bench
/// artifacts (`tools/benchdiff`) — so the parser favors a tiny surface
/// and strict errors over speed: full RFC 8259 value grammar, object key
/// order preserved (emitters are deterministic and diffs should be too),
/// numbers held as double plus an exact-integer flag, \uXXXX escapes
/// decoded to UTF-8.
///
/// Parsing never aborts: malformed input yields false and a position-
/// annotated error message, the same contract as the corpus decoder.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_SUPPORT_JSON_H
#define SBI_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sbi {
namespace json {

class Value;

/// Object members as an order-preserving list; lookups are linear, which
/// is fine for the small documents the pipeline emits.
using Member = std::pair<std::string, Value>;

class Value {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() = default;

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return B; }
  double asNumber() const { return Num; }
  /// True when the literal was an integer that fits int64 exactly.
  bool isInteger() const { return K == Kind::Number && IntExact; }
  int64_t asInteger() const { return Int; }
  const std::string &asString() const { return Str; }
  const std::vector<Value> &array() const { return Arr; }
  const std::vector<Member> &members() const { return Obj; }

  /// First member named \p Name; null when absent or not an object.
  const Value *find(std::string_view Name) const;

  /// Member access chained through nested objects ("a.b.c"-style paths are
  /// the callers' business; this is one hop). Null when missing.
  const Value *operator[](std::string_view Name) const { return find(Name); }

  /// Convenience typed getters: value when present and of the right kind,
  /// \p Default otherwise.
  double numberOr(std::string_view Name, double Default) const;
  std::string stringOr(std::string_view Name, std::string Default) const;

  static Value makeNull() { return Value(); }
  static Value makeBool(bool V);
  static Value makeNumber(double V);
  static Value makeInteger(int64_t V);
  static Value makeString(std::string V);
  static Value makeArray(std::vector<Value> V);
  static Value makeObject(std::vector<Member> V);

private:
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  int64_t Int = 0;
  bool IntExact = false;
  std::string Str;
  std::vector<Value> Arr;
  std::vector<Member> Obj;
};

/// Parses \p Text as one JSON document (trailing whitespace allowed,
/// trailing garbage is an error). On failure returns false and sets
/// \p Error to "offset N: reason".
bool parse(std::string_view Text, Value &Out, std::string &Error);

} // namespace json
} // namespace sbi

#endif // SBI_SUPPORT_JSON_H
