//===- runtime/Semantics.h - Shared MicroC evaluation semantics -----------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single source of truth for MicroC's dynamic semantics — operators,
/// truthiness, array/record access with the silent-overrun model, declared-
/// kind enforcement, and every intrinsic — shared by the two execution
/// engines (the tree-walking interpreter in runtime/Interp.cpp and the
/// bytecode VM in vm/). Keeping these here guarantees the engines cannot
/// drift: a program must produce the same output, traps, exit code, and
/// observable events on both, which the differential tests assert.
///
/// Engines plug in through EvalSink: traps, output, exit, ground-truth bug
/// markers, run inputs, and the per-run overrun padding.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_RUNTIME_SEMANTICS_H
#define SBI_RUNTIME_SEMANTICS_H

#include "lang/AST.h"
#include "runtime/Interp.h"
#include "runtime/Value.h"

#include <string>
#include <vector>

namespace sbi {

/// What the shared semantics need from an execution engine.
class EvalSink {
public:
  virtual ~EvalSink();

  /// Reports a trap; the engine must stop execution after this returns.
  virtual void trap(TrapKind Kind, std::string Message) = 0;
  /// Appends run output (the engine applies its output cap).
  virtual void emitOutput(const std::string &Text) = 0;
  /// The exit(code) intrinsic.
  virtual void exitRun(int Code) = 0;
  /// The __bug(n) ground-truth marker.
  virtual void recordBug(int BugId) = 0;
  virtual const std::vector<std::string> &inputArgs() const = 0;
  virtual size_t overrunPad() const = 0;
};

/// Cap on a single allocation's logical size (mkarray traps beyond it).
inline constexpr int64_t MaxArrayElements = 4'000'000;
/// Cap on run output; excess is silently dropped.
inline constexpr size_t MaxOutputBytes = 1u << 20;

/// Appends \p Text to run output \p Out, truncating byte-exactly at
/// MaxOutputBytes. Both engines must route emitOutput through this so the
/// retained prefix never depends on how a program chunked its writes.
void semAppendOutput(std::string &Out, const std::string &Text);

/// The default value a declaration of \p Kind initializes to.
Value defaultValueFor(VarKind Kind);

/// int -> nonzero test; traps KindError on any other kind and returns
/// false.
bool semTruthy(const Value &V, EvalSink &Sink);

/// Evaluates a non-short-circuit binary operator (And/Or are control flow
/// and stay in the engines). Traps on kind errors and division by zero.
Value semBinaryOp(BinaryOp Op, const Value &Lhs, const Value &Rhs,
                  EvalSink &Sink);

Value semUnaryOp(UnaryOp Op, const Value &V, EvalSink &Sink);

/// Resolves Base[Subscript] to a storage cell, applying the paper's
/// silent-overrun padding model; null on trap.
Value *semResolveElement(const Value &Base, const Value &Subscript,
                         EvalSink &Sink);

/// Loads Base.Field; traps NullDeref/KindError as the interpreter does.
Value semLoadField(const Value &Base, const std::string &Field,
                   EvalSink &Sink);

/// Stores into Base.Field; returns false after trapping.
bool semStoreField(const Value &Base, const std::string &Field, Value V,
                   EvalSink &Sink);

/// Declared-kind enforcement for variable stores; returns false after
/// trapping KindError.
bool semCheckKind(VarKind DeclaredKind, const Value &V,
                  const std::string &Name, EvalSink &Sink);

/// Evaluates intrinsic \p IntrinsicId on \p Args, a pointer to the
/// arity-checked argument values (arity is enforced by sema, so no count is
/// needed — the intrinsic reads exactly its declared arguments). Passing a
/// pointer lets engines hand over in-place operand-stack slots instead of
/// materializing a fresh vector per call. \p CalleeName feeds error
/// messages. Unit for void intrinsics; engine must check for traps and
/// exits afterwards.
Value semCallIntrinsic(int IntrinsicId, const char *CalleeName,
                       const Value *Args, EvalSink &Sink);

} // namespace sbi

#endif // SBI_RUNTIME_SEMANTICS_H
