//===- runtime/Semantics.cpp - Shared MicroC evaluation semantics ---------===//

#include "runtime/Semantics.h"

#include "lang/Intrinsics.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace sbi;

EvalSink::~EvalSink() = default;

void sbi::semAppendOutput(std::string &Out, const std::string &Text) {
  if (Out.size() >= MaxOutputBytes)
    return;
  size_t Room = MaxOutputBytes - Out.size();
  Out.append(Text, 0, std::min(Room, Text.size()));
}

Value sbi::defaultValueFor(VarKind Kind) {
  switch (Kind) {
  case VarKind::Int:
    return Value::makeInt(0);
  case VarKind::Str:
    return Value::makeStr(std::string());
  case VarKind::Arr:
  case VarKind::Rec:
    return Value::makeNull();
  }
  return Value();
}

bool sbi::semTruthy(const Value &V, EvalSink &Sink) {
  if (V.isInt())
    return V.asInt() != 0;
  Sink.trap(TrapKind::KindError,
            format("condition must be an int, got %s",
                   valueKindName(V.kind())));
  return false;
}

Value sbi::semBinaryOp(BinaryOp Op, const Value &Lhs, const Value &Rhs,
                       EvalSink &Sink) {
  if (Op == BinaryOp::Eq)
    return Value::makeInt(Lhs.equals(Rhs) ? 1 : 0);
  if (Op == BinaryOp::Ne)
    return Value::makeInt(Lhs.equals(Rhs) ? 0 : 1);

  if (!Lhs.isInt() || !Rhs.isInt()) {
    Sink.trap(TrapKind::KindError,
              format("'%s' requires int operands, got %s and %s",
                     binaryOpSpelling(Op), valueKindName(Lhs.kind()),
                     valueKindName(Rhs.kind())));
    return Value();
  }

  int64_t A = Lhs.asInt();
  int64_t B = Rhs.asInt();
  auto wrap = [](uint64_t V) { return static_cast<int64_t>(V); };

  switch (Op) {
  case BinaryOp::Add:
    return Value::makeInt(
        wrap(static_cast<uint64_t>(A) + static_cast<uint64_t>(B)));
  case BinaryOp::Sub:
    return Value::makeInt(
        wrap(static_cast<uint64_t>(A) - static_cast<uint64_t>(B)));
  case BinaryOp::Mul:
    return Value::makeInt(
        wrap(static_cast<uint64_t>(A) * static_cast<uint64_t>(B)));
  case BinaryOp::Div:
    if (B == 0) {
      Sink.trap(TrapKind::DivByZero, "division by zero");
      return Value();
    }
    if (A == INT64_MIN && B == -1)
      return Value::makeInt(INT64_MIN);
    return Value::makeInt(A / B);
  case BinaryOp::Rem:
    if (B == 0) {
      Sink.trap(TrapKind::DivByZero, "remainder by zero");
      return Value();
    }
    if (A == INT64_MIN && B == -1)
      return Value::makeInt(0);
    return Value::makeInt(A % B);
  case BinaryOp::Lt:
    return Value::makeInt(A < B ? 1 : 0);
  case BinaryOp::Le:
    return Value::makeInt(A <= B ? 1 : 0);
  case BinaryOp::Gt:
    return Value::makeInt(A > B ? 1 : 0);
  case BinaryOp::Ge:
    return Value::makeInt(A >= B ? 1 : 0);
  default:
    assert(false && "And/Or are control flow; Eq/Ne handled above");
    return Value();
  }
}

Value sbi::semUnaryOp(UnaryOp Op, const Value &V, EvalSink &Sink) {
  if (!V.isInt()) {
    Sink.trap(TrapKind::KindError,
              format("unary operator on %s", valueKindName(V.kind())));
    return Value();
  }
  if (Op == UnaryOp::Not)
    return Value::makeInt(V.asInt() == 0 ? 1 : 0);
  // Negate through unsigned arithmetic to avoid overflow UB on INT64_MIN.
  return Value::makeInt(
      static_cast<int64_t>(0 - static_cast<uint64_t>(V.asInt())));
}

Value *sbi::semResolveElement(const Value &Base, const Value &Subscript,
                              EvalSink &Sink) {
  if (Base.isNull()) {
    Sink.trap(TrapKind::NullDeref, "element access through null");
    return nullptr;
  }
  if (!Base.isArr()) {
    Sink.trap(TrapKind::KindError,
              format("element access on %s", valueKindName(Base.kind())));
    return nullptr;
  }
  if (!Subscript.isInt()) {
    Sink.trap(TrapKind::KindError,
              format("array index must be int, got %s",
                     valueKindName(Subscript.kind())));
    return nullptr;
  }
  ArrayObj &Arr = Base.asArr();
  int64_t I = Subscript.asInt();
  // Accesses within [LogicalSize, physical size) land in the per-run
  // padding: silent corruption, no trap. Past the padding: crash. This is
  // the source of the paper's non-deterministic overrun behaviour.
  if (I < 0 || static_cast<uint64_t>(I) >= Arr.Data.size()) {
    Sink.trap(TrapKind::OutOfBounds,
              format("index %lld out of bounds (size %zu)",
                     static_cast<long long>(I), Arr.LogicalSize));
    return nullptr;
  }
  return &Arr.Data[static_cast<size_t>(I)];
}

Value sbi::semLoadField(const Value &Base, const std::string &Field,
                        EvalSink &Sink) {
  if (Base.isNull()) {
    Sink.trap(TrapKind::NullDeref,
              format("field '%s' of null", Field.c_str()));
    return Value();
  }
  if (!Base.isRec()) {
    Sink.trap(TrapKind::KindError,
              format("field access on %s", valueKindName(Base.kind())));
    return Value();
  }
  const RecordObj &Rec = Base.asRec();
  int FieldIndex = Rec.Decl->fieldIndex(Field);
  if (FieldIndex < 0) {
    Sink.trap(TrapKind::KindError,
              format("record '%s' has no field '%s'",
                     Rec.Decl->Name.c_str(), Field.c_str()));
    return Value();
  }
  return Rec.Fields[static_cast<size_t>(FieldIndex)];
}

bool sbi::semStoreField(const Value &Base, const std::string &Field, Value V,
                        EvalSink &Sink) {
  if (Base.isNull()) {
    Sink.trap(TrapKind::NullDeref,
              format("field '%s' of null", Field.c_str()));
    return false;
  }
  if (!Base.isRec()) {
    Sink.trap(TrapKind::KindError,
              format("field access on %s", valueKindName(Base.kind())));
    return false;
  }
  RecordObj &Rec = Base.asRec();
  int FieldIndex = Rec.Decl->fieldIndex(Field);
  if (FieldIndex < 0) {
    Sink.trap(TrapKind::KindError,
              format("record '%s' has no field '%s'",
                     Rec.Decl->Name.c_str(), Field.c_str()));
    return false;
  }
  Rec.Fields[static_cast<size_t>(FieldIndex)] = std::move(V);
  return true;
}

bool sbi::semCheckKind(VarKind DeclaredKind, const Value &V,
                       const std::string &Name, EvalSink &Sink) {
  bool Ok = false;
  switch (DeclaredKind) {
  case VarKind::Int:
    Ok = V.isInt();
    break;
  case VarKind::Str:
    Ok = V.isStr() || V.isNull();
    break;
  case VarKind::Arr:
    Ok = V.isArr() || V.isNull();
    break;
  case VarKind::Rec:
    Ok = V.isRec() || V.isNull();
    break;
  }
  if (!Ok)
    Sink.trap(TrapKind::KindError,
              format("cannot store %s into %s variable '%s'",
                     valueKindName(V.kind()), varKindName(DeclaredKind),
                     Name.c_str()));
  return Ok;
}

Value sbi::semCallIntrinsic(int IntrinsicId, const char *CalleeName,
                            const Value *Args, EvalSink &Sink) {
  auto Which = static_cast<Intrinsic>(IntrinsicId);

  auto wantInt = [&](size_t I) -> bool {
    if (Args[I].isInt())
      return true;
    Sink.trap(TrapKind::KindError,
              format("'%s' argument %zu must be int, got %s",
                     CalleeName, I + 1,
                     valueKindName(Args[I].kind())));
    return false;
  };
  auto wantStr = [&](size_t I) -> bool {
    if (Args[I].isStr())
      return true;
    if (Args[I].isNull())
      Sink.trap(TrapKind::NullDeref,
                format("'%s' applied to null string", CalleeName));
    else
      Sink.trap(TrapKind::KindError,
                format("'%s' argument %zu must be str, got %s",
                       CalleeName, I + 1,
                       valueKindName(Args[I].kind())));
    return false;
  };

  switch (Which) {
  case Intrinsic::Print:
  case Intrinsic::Println: {
    std::string Text = Args[0].toDisplayString();
    if (Which == Intrinsic::Println)
      Text += '\n';
    Sink.emitOutput(Text);
    return Value();
  }

  case Intrinsic::Len:
    if (Args[0].isStr())
      return Value::makeInt(static_cast<int64_t>(Args[0].asStr().size()));
    if (Args[0].isArr())
      return Value::makeInt(
          static_cast<int64_t>(Args[0].asArr().LogicalSize));
    if (Args[0].isNull()) {
      Sink.trap(TrapKind::NullDeref, "len of null");
      return Value();
    }
    Sink.trap(TrapKind::KindError,
              format("len of %s", valueKindName(Args[0].kind())));
    return Value();

  case Intrinsic::Substr: {
    if (!wantStr(0) || !wantInt(1) || !wantInt(2))
      return Value();
    const std::string &S = Args[0].asStr();
    int64_t Start = std::clamp<int64_t>(Args[1].asInt(), 0,
                                        static_cast<int64_t>(S.size()));
    int64_t Count = std::clamp<int64_t>(
        Args[2].asInt(), 0, static_cast<int64_t>(S.size()) - Start);
    return Value::makeStr(S.substr(static_cast<size_t>(Start),
                                   static_cast<size_t>(Count)));
  }

  case Intrinsic::Charat: {
    if (!wantStr(0) || !wantInt(1))
      return Value();
    const std::string &S = Args[0].asStr();
    int64_t I = Args[1].asInt();
    if (I < 0 || static_cast<uint64_t>(I) >= S.size()) {
      Sink.trap(TrapKind::BadArg,
                format("charat index %lld out of range (length %zu)",
                       static_cast<long long>(I), S.size()));
      return Value();
    }
    return Value::makeInt(
        static_cast<unsigned char>(S[static_cast<size_t>(I)]));
  }

  case Intrinsic::Strcmp: {
    if (!wantStr(0) || !wantStr(1))
      return Value();
    int Raw = Args[0].asStr().compare(Args[1].asStr());
    return Value::makeInt(Raw < 0 ? -1 : (Raw > 0 ? 1 : 0));
  }

  case Intrinsic::Strcat:
    if (!wantStr(0) || !wantStr(1))
      return Value();
    return Value::makeStr(Args[0].asStr() + Args[1].asStr());

  case Intrinsic::Itoa:
    if (!wantInt(0))
      return Value();
    return Value::makeStr(
        format("%lld", static_cast<long long>(Args[0].asInt())));

  case Intrinsic::Atoi: {
    if (!wantStr(0))
      return Value();
    const std::string &S = Args[0].asStr();
    size_t I = 0;
    bool Negative = false;
    if (I < S.size() && (S[I] == '-' || S[I] == '+')) {
      Negative = S[I] == '-';
      ++I;
    }
    int64_t V = 0;
    for (; I < S.size() && S[I] >= '0' && S[I] <= '9'; ++I)
      V = V * 10 + (S[I] - '0');
    return Value::makeInt(Negative ? -V : V);
  }

  case Intrinsic::Mkarray: {
    if (!wantInt(0))
      return Value();
    int64_t N = Args[0].asInt();
    if (N < 0 || N > MaxArrayElements) {
      Sink.trap(TrapKind::OutOfMemory,
                format("mkarray(%lld)", static_cast<long long>(N)));
      return Value();
    }
    auto Arr = std::make_shared<ArrayObj>();
    Arr->LogicalSize = static_cast<size_t>(N);
    Arr->Data.assign(static_cast<size_t>(N) + Sink.overrunPad(),
                     Value::makeInt(0));
    return Value::makeArr(std::move(Arr));
  }

  case Intrinsic::Arg: {
    if (!wantInt(0))
      return Value();
    int64_t I = Args[0].asInt();
    if (I < 0 || static_cast<uint64_t>(I) >= Sink.inputArgs().size()) {
      Sink.trap(TrapKind::BadArg,
                format("arg(%lld) out of range (%zu args)",
                       static_cast<long long>(I), Sink.inputArgs().size()));
      return Value();
    }
    return Value::makeStr(Sink.inputArgs()[static_cast<size_t>(I)]);
  }

  case Intrinsic::Nargs:
    return Value::makeInt(static_cast<int64_t>(Sink.inputArgs().size()));

  case Intrinsic::Exit:
    if (!wantInt(0))
      return Value();
    Sink.exitRun(static_cast<int>(Args[0].asInt()));
    return Value();

  case Intrinsic::Abs:
    if (!wantInt(0))
      return Value();
    return Value::makeInt(Args[0].asInt() < 0 ? -Args[0].asInt()
                                              : Args[0].asInt());

  case Intrinsic::Min:
    if (!wantInt(0) || !wantInt(1))
      return Value();
    return Value::makeInt(std::min(Args[0].asInt(), Args[1].asInt()));

  case Intrinsic::Max:
    if (!wantInt(0) || !wantInt(1))
      return Value();
    return Value::makeInt(std::max(Args[0].asInt(), Args[1].asInt()));

  case Intrinsic::BugMark:
    if (!wantInt(0))
      return Value();
    Sink.recordBug(static_cast<int>(Args[0].asInt()));
    return Value();

  case Intrinsic::Trap: {
    std::string Message =
        Args[0].isStr() ? Args[0].asStr() : Args[0].toDisplayString();
    Sink.trap(TrapKind::ExplicitTrap, Message);
    return Value();
  }
  }
  return Value();
}
