//===- runtime/Observer.h - Execution observation hooks -------------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface through which the interpreter reports the dynamic events
/// that the paper's three instrumentation schemes observe (Section 2):
/// branch outcomes, scalar function-return values, and scalar assignments.
/// The interpreter calls these hooks unconditionally; sampling decisions
/// (the "coin flip" of the sampling transformation) are the observer's job,
/// which keeps the runtime layer independent of the instrument layer.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_RUNTIME_OBSERVER_H
#define SBI_RUNTIME_OBSERVER_H

#include "lang/AST.h"
#include "runtime/Value.h"

namespace sbi {

/// Read-only access to variable storage at one moment of execution; lets
/// the scalar-pairs scheme read the in-scope variables y_i when x = ... is
/// executed.
class FrameView {
public:
  FrameView(const std::vector<Value> &Globals, const std::vector<Value> &Locals)
      : Globals(Globals), Locals(Locals) {}

  const Value &get(VarSlot Slot) const {
    const std::vector<Value> &Storage = Slot.IsGlobal ? Globals : Locals;
    assert(Slot.Index >= 0 &&
           static_cast<size_t>(Slot.Index) < Storage.size() &&
           "variable slot out of range");
    return Storage[static_cast<size_t>(Slot.Index)];
  }

private:
  const std::vector<Value> &Globals;
  const std::vector<Value> &Locals;
};

/// Dynamic-event callbacks keyed by AST node id.
class ExecutionObserver {
public:
  virtual ~ExecutionObserver();

  /// A conditional (if/while/for test or &&/|| left operand) evaluated to
  /// \p Taken at the node with id \p NodeId.
  virtual void onBranch(int NodeId, bool Taken);

  /// The call expression \p NodeId returned the scalar \p Result.
  virtual void onScalarReturn(int NodeId, int64_t Result);

  /// The assignment or initialized declaration \p NodeId stored the scalar
  /// \p NewValue into an int variable; \p Frame reads other variables.
  virtual void onScalarAssign(int NodeId, int64_t NewValue,
                              const FrameView &Frame);
};

} // namespace sbi

#endif // SBI_RUNTIME_OBSERVER_H
