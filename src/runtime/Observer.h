//===- runtime/Observer.h - Execution observation hooks -------------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface through which the interpreter reports the dynamic events
/// that the paper's three instrumentation schemes observe (Section 2):
/// branch outcomes, scalar function-return values, and scalar assignments.
/// The interpreter calls these hooks unconditionally; sampling decisions
/// (the "coin flip" of the sampling transformation) are the observer's job,
/// which keeps the runtime layer independent of the instrument layer.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_RUNTIME_OBSERVER_H
#define SBI_RUNTIME_OBSERVER_H

#include "lang/AST.h"
#include "runtime/Value.h"

#include <cstdint>

namespace sbi {

/// Read-only access to variable storage at one moment of execution; lets
/// the scalar-pairs scheme read the in-scope variables y_i when x = ... is
/// executed. Locals are a raw span so engines that keep frame locals inside
/// a shared arena (the bytecode VM) can expose them without materializing a
/// vector; the view is transient and must not outlive the observer call.
class FrameView {
public:
  FrameView(const std::vector<Value> &Globals, const std::vector<Value> &Locals)
      : Globals(Globals), Locals(Locals.data()), NumLocals(Locals.size()) {}

  FrameView(const std::vector<Value> &Globals, const Value *Locals,
            size_t NumLocals)
      : Globals(Globals), Locals(Locals), NumLocals(NumLocals) {}

  const Value &get(VarSlot Slot) const {
    if (Slot.IsGlobal) {
      assert(Slot.Index >= 0 &&
             static_cast<size_t>(Slot.Index) < Globals.size() &&
             "variable slot out of range");
      return Globals[static_cast<size_t>(Slot.Index)];
    }
    assert(Slot.Index >= 0 && static_cast<size_t>(Slot.Index) < NumLocals &&
           "variable slot out of range");
    return Locals[static_cast<size_t>(Slot.Index)];
  }

private:
  const std::vector<Value> &Globals;
  const Value *Locals;
  size_t NumLocals;
};

/// The sampling fast-path handle an observer may expose so an execution
/// engine can hoist the geometric skip countdown (Section 2's sparse
/// sampling transformation) into its dispatch loop. When a node's entry
/// names a single site, a non-sampled reach is one in-register decrement of
/// that site's countdown — the observer virtual call fires only when the
/// countdown hits zero (a sample) or is uninitialized for this run (the
/// first reach, which seeds the site's RNG stream). A FanNode entry covers
/// nodes with several sampled sites (scalar-pairs nodes routinely carry a
/// site per visible comparand): the engine scans the node's countdown span
/// and either bulk-decrements — every site independently decided "skip" —
/// or, the moment any site would sample or needs its first draw, calls the
/// observer with nothing mutated. Either way each site's countdown and RNG
/// stream advance exactly as the ReportCollector itself would have advanced
/// them, so reports stay bit-identical whether or not an engine uses the
/// handle.
struct SamplingAccel {
  /// NodeSite entry: always invoke the observer (a site monitored at rate
  /// 1.0, or a node this table does not cover).
  static constexpr uint32_t CallObserver = UINT32_MAX;
  /// NodeSite entry: no enabled site — the event cannot be observed and
  /// the engine may skip the call entirely.
  static constexpr uint32_t SkipNode = UINT32_MAX - 1;
  /// NodeSite entry: several sites, all with rates in (0, 1); the node's
  /// span of FanSites holds their ids.
  static constexpr uint32_t FanNode = UINT32_MAX - 2;
  /// Countdown value meaning "not drawn yet this run".
  static constexpr uint64_t Uninit = UINT64_MAX;

  /// Indexed by AST node id: CallObserver, SkipNode, FanNode, or the single
  /// enabled site id whose plan rate lies in (0, 1).
  std::vector<uint32_t> NodeSite;
  /// CSR fan spans: a FanNode's sampled sites are
  /// FanSites[FanStart[N] .. FanStart[N+1]). Other nodes have empty spans.
  std::vector<uint32_t> FanStart;
  std::vector<uint32_t> FanSites;
  /// Per-site skip countdowns, owned by the observer; stable for the
  /// observer's lifetime.
  uint64_t *Countdown = nullptr;

  uint32_t siteFor(int NodeId) const {
    auto Id = static_cast<size_t>(static_cast<uint32_t>(NodeId));
    return Id < NodeSite.size() ? NodeSite[Id] : CallObserver;
  }
};

/// Dynamic-event callbacks keyed by AST node id.
class ExecutionObserver {
public:
  virtual ~ExecutionObserver();

  /// A conditional (if/while/for test or &&/|| left operand) evaluated to
  /// \p Taken at the node with id \p NodeId.
  virtual void onBranch(int NodeId, bool Taken);

  /// The call expression \p NodeId returned the scalar \p Result.
  virtual void onScalarReturn(int NodeId, int64_t Result);

  /// The assignment or initialized declaration \p NodeId stored the scalar
  /// \p NewValue into an int variable; \p Frame reads other variables.
  virtual void onScalarAssign(int NodeId, int64_t NewValue,
                              const FrameView &Frame);

  /// Optional sampling fast path (see SamplingAccel). The default — and any
  /// observer that must see every event, e.g. a collector accumulating
  /// reach statistics — returns null, which forces engines onto the
  /// always-call slow path. Engines query once per run.
  virtual const SamplingAccel *samplingAccel() const { return nullptr; }
};

} // namespace sbi

#endif // SBI_RUNTIME_OBSERVER_H
