//===- runtime/Interp.cpp - MicroC tree-walking interpreter ---------------===//

#include "runtime/Interp.h"

#include "obs/Telemetry.h"
#include "obs/Tracer.h"
#include "runtime/Semantics.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace sbi;

ExecutionObserver::~ExecutionObserver() = default;
void ExecutionObserver::onBranch(int, bool) {}
void ExecutionObserver::onScalarReturn(int, int64_t) {}
void ExecutionObserver::onScalarAssign(int, int64_t, const FrameView &) {}

const char *sbi::trapKindName(TrapKind Kind) {
  switch (Kind) {
  case TrapKind::None:
    return "none";
  case TrapKind::NullDeref:
    return "null-dereference";
  case TrapKind::OutOfBounds:
    return "out-of-bounds";
  case TrapKind::DivByZero:
    return "division-by-zero";
  case TrapKind::KindError:
    return "kind-error";
  case TrapKind::BadArg:
    return "bad-argument";
  case TrapKind::OutOfMemory:
    return "out-of-memory";
  case TrapKind::ExplicitTrap:
    return "explicit-trap";
  case TrapKind::StepLimit:
    return "step-limit";
  case TrapKind::StackOverflow:
    return "stack-overflow";
  case TrapKind::BadBytecode:
    return "bad-bytecode";
  }
  return "?";
}

namespace {

enum class Flow { Normal, Break, Continue, Return };

/// The tree-walking engine; implements EvalSink so the shared semantics in
/// runtime/Semantics.cpp can report traps and effects.
class Interpreter final : public EvalSink {
public:
  Interpreter(const Program &Prog, const RunConfig &Config)
      : Prog(Prog), Config(Config) {}

  RunOutcome run();

  // --- EvalSink ---------------------------------------------------------
  void trap(TrapKind Kind, std::string Message) override {
    if (Stopped)
      return;
    Stopped = true;
    Outcome.Trap = Kind;
    Outcome.TrapLine = EvalLine;
    Outcome.TrapMessage = std::move(Message);
    captureStack(EvalLine);
  }

  void emitOutput(const std::string &Text) override {
    semAppendOutput(Outcome.Output, Text);
  }

  void exitRun(int Code) override {
    Outcome.ExitCode = Code;
    Stopped = true;
  }

  void recordBug(int BugId) override {
    Outcome.BugsTriggered.push_back(BugId);
  }

  const std::vector<std::string> &inputArgs() const override {
    return Config.Args;
  }

  size_t overrunPad() const override { return Config.OverrunPad; }

private:
  struct Frame {
    const FuncDecl *Func = nullptr;
    std::vector<Value> Locals;
    int CurLine = 0;
  };

  void captureStack(int Line);

  /// Accounts one interpreter step; traps when the budget is exhausted.
  void step(int Line) {
    EvalLine = Line;
    if (++Steps >= Config.StepLimit)
      trap(TrapKind::StepLimit, "step limit exceeded");
  }

  std::vector<Value> &localsOrEmpty() {
    return Stack.empty() ? EmptyLocals : Stack.back().Locals;
  }

  Value &slotStorage(VarSlot Slot) {
    std::vector<Value> &Storage =
        Slot.IsGlobal ? Globals : Stack.back().Locals;
    assert(Slot.Index >= 0 &&
           static_cast<size_t>(Slot.Index) < Storage.size() &&
           "variable slot out of range");
    return Storage[static_cast<size_t>(Slot.Index)];
  }

  bool storeSlot(VarSlot Slot, VarKind DeclaredKind, const Value &V,
                 const std::string &Name) {
    if (!semCheckKind(DeclaredKind, V, Name, *this))
      return false;
    slotStorage(Slot) = V;
    return true;
  }

  Flow execStmt(const Stmt &S);
  Flow execBlock(const BlockStmt &Block);
  void execAssign(const AssignStmt &Assign);
  void execVarDecl(const VarDeclStmt &Decl);

  Value eval(const Expr &E);
  Value evalBinary(const BinaryExpr &Bin);
  Value evalCall(const CallExpr &Call);
  Value callFunction(const FuncDecl &Func, std::vector<Value> Args);
  Value *resolveElement(const IndexExpr &Index);

  const Program &Prog;
  const RunConfig &Config;
  RunOutcome Outcome;
  bool Stopped = false;
  std::vector<Value> Globals;
  std::vector<Frame> Stack;
  std::vector<Value> EmptyLocals;
  Value ReturnValue;
  uint64_t Steps = 0;
  int EvalLine = 0;
};

} // namespace

void Interpreter::captureStack(int Line) {
  Outcome.StackTrace.clear();
  int InnerLine = Line;
  for (auto It = Stack.rbegin(); It != Stack.rend(); ++It) {
    Outcome.StackTrace.push_back(
        format("%s@%d", It->Func->Name.c_str(), InnerLine));
    InnerLine = It->CurLine;
  }
}

RunOutcome Interpreter::run() {
  Globals.resize(Prog.Globals.size());
  for (const auto &Global : Prog.Globals) {
    EvalLine = Global->Line;
    Value Init = Global->Init ? eval(*Global->Init)
                              : defaultValueFor(Global->Kind);
    if (Stopped)
      break;
    EvalLine = Global->Line;
    if (!semCheckKind(Global->Kind, Init, Global->Name, *this))
      break;
    Globals[static_cast<size_t>(Global->Slot)] = std::move(Init);
  }

  if (!Stopped) {
    const FuncDecl *Main = Prog.findFunction("main");
    assert(Main && "Sema guarantees main exists");
    Value Result = callFunction(*Main, {});
    if (!Stopped && Result.isInt())
      Outcome.ExitCode = static_cast<int>(Result.asInt());
  }

  std::sort(Outcome.BugsTriggered.begin(), Outcome.BugsTriggered.end());
  Outcome.BugsTriggered.erase(std::unique(Outcome.BugsTriggered.begin(),
                                          Outcome.BugsTriggered.end()),
                              Outcome.BugsTriggered.end());
  Outcome.Steps = Steps;
  // Telemetry is a once-per-run flush of the locally maintained step
  // count; the per-step hot path carries no telemetry at all.
#if !defined(SBI_TELEMETRY_DISABLED)
  if (Telemetry::enabled()) {
    static Counter &RunsCounter =
        Telemetry::metrics().registerCounter("interp.runs");
    static Counter &StepsCounter =
        Telemetry::metrics().registerCounter("interp.steps");
    RunsCounter.add(1);
    StepsCounter.add(Steps);
  }
#endif
  return std::move(Outcome);
}

Flow Interpreter::execBlock(const BlockStmt &Block) {
  for (const StmtPtr &Child : Block.Body) {
    Flow F = execStmt(*Child);
    if (F != Flow::Normal || Stopped)
      return F;
  }
  return Flow::Normal;
}

void Interpreter::execAssign(const AssignStmt &Assign) {
  Value V = eval(*Assign.Value);
  if (Stopped)
    return;

  switch (Assign.Target->Kind) {
  case ExprKind::VarRef: {
    const auto &Var = static_cast<const VarRefExpr &>(*Assign.Target);
    EvalLine = Assign.Line;
    if (!storeSlot(Var.Slot, Var.DeclaredKind, V, Var.Name))
      return;
    if (Config.Observer && Assign.TargetIsIntVar && V.isInt())
      Config.Observer->onScalarAssign(
          Assign.Id, V.asInt(), FrameView(Globals, localsOrEmpty()));
    return;
  }

  case ExprKind::Index: {
    const auto &Index = static_cast<const IndexExpr &>(*Assign.Target);
    if (Value *Element = resolveElement(Index))
      *Element = std::move(V);
    return;
  }

  case ExprKind::Field: {
    const auto &Field = static_cast<const FieldExpr &>(*Assign.Target);
    Value Base = eval(*Field.Base);
    if (Stopped)
      return;
    EvalLine = Field.Line;
    semStoreField(Base, Field.FieldName, std::move(V), *this);
    return;
  }

  default:
    assert(false && "Sema rejects other assignment targets");
  }
}

void Interpreter::execVarDecl(const VarDeclStmt &Decl) {
  Value Init =
      Decl.Init ? eval(*Decl.Init) : defaultValueFor(Decl.DeclKind);
  if (Stopped)
    return;
  EvalLine = Decl.Line;
  if (!storeSlot(Decl.Slot, Decl.DeclKind, Init, Decl.Name))
    return;
  if (Config.Observer && Decl.DeclKind == VarKind::Int && Decl.Init &&
      Init.isInt())
    Config.Observer->onScalarAssign(Decl.Id, Init.asInt(),
                                    FrameView(Globals, localsOrEmpty()));
}

Flow Interpreter::execStmt(const Stmt &S) {
  if (Stopped)
    return Flow::Normal;
  if (!Stack.empty())
    Stack.back().CurLine = S.Line;
  step(S.Line);
  if (Stopped)
    return Flow::Normal;

  switch (S.Kind) {
  case StmtKind::Expr:
    eval(*static_cast<const ExprStmt &>(S).E);
    return Flow::Normal;

  case StmtKind::Assign:
    execAssign(static_cast<const AssignStmt &>(S));
    return Flow::Normal;

  case StmtKind::VarDecl:
    execVarDecl(static_cast<const VarDeclStmt &>(S));
    return Flow::Normal;

  case StmtKind::Block:
    return execBlock(static_cast<const BlockStmt &>(S));

  case StmtKind::If: {
    const auto &If = static_cast<const IfStmt &>(S);
    Value Cond = eval(*If.Cond);
    if (Stopped)
      return Flow::Normal;
    EvalLine = If.Cond->Line;
    bool Taken = semTruthy(Cond, *this);
    if (Stopped)
      return Flow::Normal;
    if (Config.Observer)
      Config.Observer->onBranch(If.Id, Taken);
    if (Taken)
      return execStmt(*If.Then);
    if (If.Else)
      return execStmt(*If.Else);
    return Flow::Normal;
  }

  case StmtKind::While: {
    const auto &While = static_cast<const WhileStmt &>(S);
    while (!Stopped) {
      Value Cond = eval(*While.Cond);
      if (Stopped)
        return Flow::Normal;
      EvalLine = While.Cond->Line;
      bool Taken = semTruthy(Cond, *this);
      if (Stopped)
        return Flow::Normal;
      if (Config.Observer)
        Config.Observer->onBranch(While.Id, Taken);
      if (!Taken)
        return Flow::Normal;
      Flow F = execStmt(*While.Body);
      if (F == Flow::Break)
        return Flow::Normal;
      if (F == Flow::Return)
        return F;
      step(While.Line);
    }
    return Flow::Normal;
  }

  case StmtKind::For: {
    const auto &For = static_cast<const ForStmt &>(S);
    if (For.Init) {
      execStmt(*For.Init);
      if (Stopped)
        return Flow::Normal;
    }
    while (!Stopped) {
      bool Taken = true;
      if (For.Cond) {
        Value Cond = eval(*For.Cond);
        if (Stopped)
          return Flow::Normal;
        EvalLine = For.Cond->Line;
        Taken = semTruthy(Cond, *this);
        if (Stopped)
          return Flow::Normal;
      }
      if (Config.Observer)
        Config.Observer->onBranch(For.Id, Taken);
      if (!Taken)
        return Flow::Normal;
      Flow F = execStmt(*For.Body);
      if (F == Flow::Break)
        return Flow::Normal;
      if (F == Flow::Return)
        return F;
      if (For.Step) {
        execStmt(*For.Step);
        if (Stopped)
          return Flow::Normal;
      }
      step(For.Line);
    }
    return Flow::Normal;
  }

  case StmtKind::Return: {
    const auto &Return = static_cast<const ReturnStmt &>(S);
    if (Return.Value) {
      Value V = eval(*Return.Value);
      if (Stopped)
        return Flow::Normal;
      ReturnValue = std::move(V);
    } else {
      ReturnValue = Value();
    }
    return Flow::Return;
  }

  case StmtKind::Break:
    return Flow::Break;

  case StmtKind::Continue:
    return Flow::Continue;
  }
  return Flow::Normal;
}

Value Interpreter::eval(const Expr &E) {
  if (Stopped)
    return Value();
  step(E.Line);
  if (Stopped)
    return Value();

  switch (E.Kind) {
  case ExprKind::IntLit:
    return Value::makeInt(static_cast<const IntLitExpr &>(E).Value);

  case ExprKind::StrLit:
    return Value::makeStr(static_cast<const StrLitExpr &>(E).Value);

  case ExprKind::NullLit:
    return Value::makeNull();

  case ExprKind::VarRef: {
    const auto &Var = static_cast<const VarRefExpr &>(E);
    const Value &V = slotStorage(Var.Slot);
    if (V.isUnit()) {
      trap(TrapKind::KindError,
           format("use of uninitialized variable '%s'", Var.Name.c_str()));
      return Value();
    }
    return V;
  }

  case ExprKind::Unary: {
    const auto &Unary = static_cast<const UnaryExpr &>(E);
    Value V = eval(*Unary.Operand);
    if (Stopped)
      return Value();
    EvalLine = E.Line;
    return semUnaryOp(Unary.Op, V, *this);
  }

  case ExprKind::Binary:
    return evalBinary(static_cast<const BinaryExpr &>(E));

  case ExprKind::Index: {
    Value *Element = resolveElement(static_cast<const IndexExpr &>(E));
    return Element ? *Element : Value();
  }

  case ExprKind::Field: {
    const auto &Field = static_cast<const FieldExpr &>(E);
    Value Base = eval(*Field.Base);
    if (Stopped)
      return Value();
    EvalLine = E.Line;
    return semLoadField(Base, Field.FieldName, *this);
  }

  case ExprKind::Call:
    return evalCall(static_cast<const CallExpr &>(E));

  case ExprKind::New: {
    const auto &New = static_cast<const NewExpr &>(E);
    auto Rec = std::make_shared<RecordObj>();
    Rec->Decl = New.Record;
    // Fields start null, modeling uninitialized heap memory: using a field
    // before assigning it is itself a (detectable) bug pattern.
    Rec->Fields.assign(New.Record->Fields.size(), Value::makeNull());
    return Value::makeRec(std::move(Rec));
  }
  }
  return Value();
}

Value Interpreter::evalBinary(const BinaryExpr &Bin) {
  // Short-circuit operators are implicit conditionals and thus branch
  // instrumentation sites (Section 2).
  if (Bin.Op == BinaryOp::And || Bin.Op == BinaryOp::Or) {
    Value Lhs = eval(*Bin.Lhs);
    if (Stopped)
      return Value();
    EvalLine = Bin.Lhs->Line;
    bool LhsTrue = semTruthy(Lhs, *this);
    if (Stopped)
      return Value();
    if (Config.Observer)
      Config.Observer->onBranch(Bin.Id, LhsTrue);
    if (Bin.Op == BinaryOp::And && !LhsTrue)
      return Value::makeInt(0);
    if (Bin.Op == BinaryOp::Or && LhsTrue)
      return Value::makeInt(1);
    Value Rhs = eval(*Bin.Rhs);
    if (Stopped)
      return Value();
    EvalLine = Bin.Rhs->Line;
    bool RhsTrue = semTruthy(Rhs, *this);
    if (Stopped)
      return Value();
    return Value::makeInt(RhsTrue ? 1 : 0);
  }

  Value Lhs = eval(*Bin.Lhs);
  if (Stopped)
    return Value();
  Value Rhs = eval(*Bin.Rhs);
  if (Stopped)
    return Value();
  EvalLine = Bin.Line;
  return semBinaryOp(Bin.Op, Lhs, Rhs, *this);
}

Value *Interpreter::resolveElement(const IndexExpr &Index) {
  Value Base = eval(*Index.Base);
  if (Stopped)
    return nullptr;
  Value Subscript = eval(*Index.Subscript);
  if (Stopped)
    return nullptr;
  EvalLine = Index.Line;
  return semResolveElement(Base, Subscript, *this);
}

Value Interpreter::evalCall(const CallExpr &Call) {
  std::vector<Value> Args;
  Args.reserve(Call.Args.size());
  for (const ExprPtr &Arg : Call.Args) {
    Args.push_back(eval(*Arg));
    if (Stopped)
      return Value();
  }

  EvalLine = Call.Line;
  Value Result;
  if (Call.Target)
    Result = callFunction(*Call.Target, std::move(Args));
  else
    Result = semCallIntrinsic(Call.IntrinsicId, Call.Callee.c_str(),
                              Args.data(), *this);
  if (Stopped)
    return Value();

  // "returns" scheme (Section 2): report the sign of scalar return values.
  if (Config.Observer && Result.isInt())
    Config.Observer->onScalarReturn(Call.Id, Result.asInt());
  return Result;
}

Value Interpreter::callFunction(const FuncDecl &Func,
                                std::vector<Value> Args) {
  if (static_cast<int>(Stack.size()) >= Config.MaxCallDepth) {
    trap(TrapKind::StackOverflow,
         format("call depth exceeded calling '%s'", Func.Name.c_str()));
    return Value();
  }

  Frame NewFrame;
  NewFrame.Func = &Func;
  NewFrame.CurLine = Func.Line;
  NewFrame.Locals.resize(static_cast<size_t>(Func.NumLocals));
  for (size_t I = 0; I < Args.size(); ++I)
    NewFrame.Locals[I] = std::move(Args[I]);
  Stack.push_back(std::move(NewFrame));

  ReturnValue = Value();
  Flow F = execBlock(*Func.Body);
  Value Result = F == Flow::Return ? std::move(ReturnValue) : Value();
  Stack.pop_back();
  return Result;
}

RunOutcome sbi::runProgram(const Program &Prog, const RunConfig &Config) {
  ScopedSpan Span("interp_execute", "interp");
  RunOutcome Outcome = Interpreter(Prog, Config).run();
  Span.arg("steps", Outcome.Steps);
  return Outcome;
}
