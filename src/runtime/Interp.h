//===- runtime/Interp.h - MicroC tree-walking interpreter -----------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes an analyzed MicroC program on one input and produces a
/// RunOutcome: output text, exit code, a trap record with a stack trace if
/// the run crashed, and the set of ground-truth bugs that triggered
/// (reported by the __bug intrinsic; the analysis never sees these — they
/// exist so experiments can score predictors against known causes, as the
/// paper does in its Table 3 validation study).
///
/// Crash model: null dereference, out-of-bounds access beyond the per-run
/// overrun padding, division by zero, dynamic kind errors, explicit trap(),
/// runaway step count, and call-stack overflow all end the run as failures.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_RUNTIME_INTERP_H
#define SBI_RUNTIME_INTERP_H

#include "lang/AST.h"
#include "runtime/Observer.h"
#include "runtime/Value.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sbi {

enum class TrapKind {
  None,
  NullDeref,    ///< Field/element access through null.
  OutOfBounds,  ///< Array access beyond logical size + padding.
  DivByZero,    ///< Integer division or remainder by zero.
  KindError,    ///< Dynamic kind mismatch (e.g. "s" + 1, if (null)).
  BadArg,       ///< Intrinsic argument out of domain (charat range, etc).
  OutOfMemory,  ///< mkarray with a negative or absurd size.
  ExplicitTrap, ///< The program called trap(msg).
  StepLimit,    ///< Run exceeded the step budget (runaway loop).
  StackOverflow, ///< Call depth exceeded the limit.
  BadBytecode   ///< Malformed/corrupted bytecode (VM integrity guard).
};

const char *trapKindName(TrapKind Kind);

/// How one run of a subject program is configured.
struct RunConfig {
  /// Input tokens visible through arg(i)/nargs().
  std::vector<std::string> Args;
  /// Silent-overrun padding for every array in this run; drawn per run by
  /// the harness to make overruns non-deterministic.
  size_t OverrunPad = 0;
  /// Abort the run after this many interpreter steps.
  uint64_t StepLimit = 50'000'000;
  /// Maximum call depth.
  int MaxCallDepth = 256;
  /// Dynamic-event sink; may be null for uninstrumented runs.
  ExecutionObserver *Observer = nullptr;
};

/// Everything a run produced.
struct RunOutcome {
  TrapKind Trap = TrapKind::None;
  std::string TrapMessage;
  int TrapLine = 0;
  /// Innermost-first "function@line" frames captured at the trap.
  std::vector<std::string> StackTrace;
  int ExitCode = 0;
  std::string Output;
  /// Ground-truth bug ids recorded via __bug(n), sorted and deduplicated.
  std::vector<int> BugsTriggered;
  uint64_t Steps = 0;

  bool crashed() const { return Trap != TrapKind::None; }
  /// A run fails if it crashed or exited nonzero (output-oracle failures
  /// are layered on by the feedback module).
  bool failed() const { return crashed() || ExitCode != 0; }
};

/// Runs \p Prog (which must have passed Sema) under \p Config.
RunOutcome runProgram(const Program &Prog, const RunConfig &Config);

} // namespace sbi

#endif // SBI_RUNTIME_INTERP_H
