//===- runtime/Value.h - MicroC runtime values ----------------------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dynamically typed runtime values for the MicroC interpreter. Strings are
/// immutable and shared; arrays and records have reference semantics (like
/// pointers in the paper's C subjects), which is what makes null-dereference
/// and buffer-overrun bug patterns expressible.
///
/// Arrays model the paper's non-deterministic buffer overruns (Section 3.1):
/// each array carries a logical size plus a per-run "padding" region.
/// Accesses past the logical size but within the padding succeed silently
/// (memory corruption that happens not to crash); accesses past the padding
/// trap. The padding is drawn randomly per run, so whether a given overrun
/// crashes varies from run to run exactly as layout decisions do in C.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_RUNTIME_VALUE_H
#define SBI_RUNTIME_VALUE_H

#include "lang/AST.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sbi {

class Value;

/// Heap array object: logical size plus silent-overrun padding.
struct ArrayObj {
  std::vector<Value> Data; ///< Physical storage (logical size + padding).
  size_t LogicalSize = 0;
};

/// Heap record object: field storage indexed per the RecordDecl.
struct RecordObj {
  const RecordDecl *Decl = nullptr;
  std::vector<Value> Fields;
};

enum class ValueKind { Unit, Int, Str, Null, Arr, Rec };

const char *valueKindName(ValueKind Kind);

/// A dynamically typed MicroC value. Cheap to copy: one tag, one word, and
/// one shared_ptr.
class Value {
public:
  Value() : Kind(ValueKind::Unit) {}

  static Value makeInt(int64_t V) {
    Value Result;
    Result.Kind = ValueKind::Int;
    Result.Int = V;
    return Result;
  }

  static Value makeStr(std::string V) {
    Value Result;
    Result.Kind = ValueKind::Str;
    Result.Obj = std::make_shared<std::string>(std::move(V));
    return Result;
  }

  static Value makeStrShared(std::shared_ptr<const std::string> V) {
    Value Result;
    Result.Kind = ValueKind::Str;
    // The type-erased handle is never written through; immutability is
    // enforced by the accessors, which only hand out const references.
    Result.Obj = std::const_pointer_cast<std::string>(std::move(V));
    return Result;
  }

  static Value makeNull() {
    Value Result;
    Result.Kind = ValueKind::Null;
    return Result;
  }

  static Value makeArr(std::shared_ptr<ArrayObj> V) {
    Value Result;
    Result.Kind = ValueKind::Arr;
    Result.Obj = std::move(V);
    return Result;
  }

  static Value makeRec(std::shared_ptr<RecordObj> V) {
    Value Result;
    Result.Kind = ValueKind::Rec;
    Result.Obj = std::move(V);
    return Result;
  }

  ValueKind kind() const { return Kind; }
  bool isUnit() const { return Kind == ValueKind::Unit; }
  bool isInt() const { return Kind == ValueKind::Int; }
  bool isStr() const { return Kind == ValueKind::Str; }
  bool isNull() const { return Kind == ValueKind::Null; }
  bool isArr() const { return Kind == ValueKind::Arr; }
  bool isRec() const { return Kind == ValueKind::Rec; }

  int64_t asInt() const {
    assert(isInt() && "value is not an int");
    return Int;
  }

  const std::string &asStr() const {
    assert(isStr() && "value is not a string");
    return *static_cast<const std::string *>(Obj.get());
  }

  std::shared_ptr<const std::string> strHandle() const {
    assert(isStr() && "value is not a string");
    return std::static_pointer_cast<const std::string>(Obj);
  }

  ArrayObj &asArr() const {
    assert(isArr() && "value is not an array");
    return *static_cast<ArrayObj *>(Obj.get());
  }

  std::shared_ptr<ArrayObj> arrHandle() const {
    assert(isArr() && "value is not an array");
    return std::static_pointer_cast<ArrayObj>(Obj);
  }

  RecordObj &asRec() const {
    assert(isRec() && "value is not a record");
    return *static_cast<RecordObj *>(Obj.get());
  }

  /// Structural equality for Int/Str/Null, reference equality for Arr/Rec,
  /// false across kinds.
  bool equals(const Value &Other) const;

  /// Renders the value the way print() would.
  std::string toDisplayString() const;

private:
  ValueKind Kind;
  int64_t Int = 0;
  /// The heap object named by Kind — a std::string, ArrayObj, or RecordObj
  /// — or null for Unit/Int/Null. A single type-erased handle keeps copies
  /// and destruction to one refcount touch; engines copy values on every
  /// operand-stack push, so this is hot.
  std::shared_ptr<void> Obj;
};

} // namespace sbi

#endif // SBI_RUNTIME_VALUE_H
