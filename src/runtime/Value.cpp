//===- runtime/Value.cpp - MicroC runtime values --------------------------===//

#include "runtime/Value.h"

#include "support/StringUtils.h"

using namespace sbi;

const char *sbi::valueKindName(ValueKind Kind) {
  switch (Kind) {
  case ValueKind::Unit:
    return "unit";
  case ValueKind::Int:
    return "int";
  case ValueKind::Str:
    return "str";
  case ValueKind::Null:
    return "null";
  case ValueKind::Arr:
    return "arr";
  case ValueKind::Rec:
    return "rec";
  }
  return "?";
}

bool Value::equals(const Value &Other) const {
  if (Kind != Other.Kind)
    return false;
  switch (Kind) {
  case ValueKind::Unit:
  case ValueKind::Null:
    return true;
  case ValueKind::Int:
    return Int == Other.Int;
  case ValueKind::Str:
    return *static_cast<const std::string *>(Obj.get()) ==
           *static_cast<const std::string *>(Other.Obj.get());
  case ValueKind::Arr:
  case ValueKind::Rec:
    return Obj == Other.Obj;
  }
  return false;
}

std::string Value::toDisplayString() const {
  switch (Kind) {
  case ValueKind::Unit:
    return "<unit>";
  case ValueKind::Int:
    return format("%lld", static_cast<long long>(Int));
  case ValueKind::Str:
    return asStr();
  case ValueKind::Null:
    return "null";
  case ValueKind::Arr:
    return format("<arr:%zu>", asArr().LogicalSize);
  case ValueKind::Rec:
    return format("<rec %s>",
                  asRec().Decl ? asRec().Decl->Name.c_str() : "?");
  }
  return "?";
}
