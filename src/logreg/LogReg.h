//===- logreg/LogReg.h - L1-regularized logistic regression baseline ------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline the paper compares against (Section 4.4 / Table 9):
/// l1-regularized logistic regression over binary predicate features
/// x_j = R(P_j), predicting the run outcome. Trained with proximal
/// gradient descent (ISTA with backtracking line search); the L1 penalty
/// drives most coefficients to exactly zero, and the surviving
/// largest-|coefficient| predicates form the baseline's ranked list.
///
/// The paper's finding, which the Table 9 bench reproduces: this global
/// classifier favours super-bug and sub-bug predictors because they cover
/// the most failing runs per unit of penalty, and it has no mechanism to
/// prefer one predictor per distinct bug.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_LOGREG_LOGREG_H
#define SBI_LOGREG_LOGREG_H

#include "feedback/Report.h"

#include <cstdint>
#include <vector>

namespace sbi {

struct LogRegOptions {
  double Lambda = 0.01;   ///< L1 penalty weight.
  int MaxIterations = 400;
  double Tolerance = 1e-7; ///< Stop when the objective improves less.
};

struct LogRegModel {
  /// Weight per predicate id (dense over the full predicate space).
  std::vector<double> Weights;
  double Intercept = 0.0;
  double FinalObjective = 0.0;
  int Iterations = 0;

  int numNonzero() const;

  /// The top-K predicates by |weight|, heaviest first (only nonzero ones).
  std::vector<std::pair<uint32_t, double>> topByMagnitude(size_t K) const;

  /// The top-K positive-weight predicates (failure predictors, the list
  /// the paper's Table 9 shows). Negative weights mark predicates whose
  /// truth indicates success — typically late-execution predicates that
  /// crashed runs never reach.
  std::vector<std::pair<uint32_t, double>> topPositive(size_t K) const;

  /// Classifier probability of failure for one report.
  double predict(const FeedbackReport &Report) const;
};

/// Trains on R(P) features from \p Set.
LogRegModel trainL1LogReg(const ReportSet &Set,
                          const LogRegOptions &Options = {});

/// Trains over a decreasing lambda path, returning the first model with at
/// most \p MaxActive nonzero weights; falls back to the sparsest model.
LogRegModel trainForSparsity(const ReportSet &Set, int MaxActive,
                             const std::vector<double> &LambdaPath);

} // namespace sbi

#endif // SBI_LOGREG_LOGREG_H
