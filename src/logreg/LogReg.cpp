//===- logreg/LogReg.cpp - L1-regularized logistic regression -------------===//

#include "logreg/LogReg.h"

#include <algorithm>
#include <cmath>

using namespace sbi;

int LogRegModel::numNonzero() const {
  int N = 0;
  for (double W : Weights)
    N += W != 0.0 ? 1 : 0;
  return N;
}

std::vector<std::pair<uint32_t, double>>
LogRegModel::topByMagnitude(size_t K) const {
  std::vector<std::pair<uint32_t, double>> Entries;
  for (uint32_t Pred = 0; Pred < Weights.size(); ++Pred)
    if (Weights[Pred] != 0.0)
      Entries.emplace_back(Pred, Weights[Pred]);
  std::sort(Entries.begin(), Entries.end(), [](const auto &A, const auto &B) {
    if (std::fabs(A.second) != std::fabs(B.second))
      return std::fabs(A.second) > std::fabs(B.second);
    return A.first < B.first;
  });
  if (Entries.size() > K)
    Entries.resize(K);
  return Entries;
}

std::vector<std::pair<uint32_t, double>>
LogRegModel::topPositive(size_t K) const {
  std::vector<std::pair<uint32_t, double>> Entries;
  for (uint32_t Pred = 0; Pred < Weights.size(); ++Pred)
    if (Weights[Pred] > 0.0)
      Entries.emplace_back(Pred, Weights[Pred]);
  std::sort(Entries.begin(), Entries.end(), [](const auto &A, const auto &B) {
    if (A.second != B.second)
      return A.second > B.second;
    return A.first < B.first;
  });
  if (Entries.size() > K)
    Entries.resize(K);
  return Entries;
}

double LogRegModel::predict(const FeedbackReport &Report) const {
  double Margin = Intercept;
  for (const auto &[Pred, Count] : Report.Counts.TruePredicates)
    if (Count > 0 && Pred < Weights.size())
      Margin += Weights[Pred];
  return 1.0 / (1.0 + std::exp(-Margin));
}

namespace {

/// Row-compressed binary design matrix: per run, the predicate ids with
/// R(P) = 1, remapped to a dense feature space of ever-true predicates.
struct Design {
  std::vector<uint32_t> FeatureToPred;
  std::vector<size_t> RowStart; // size = numRuns + 1
  std::vector<uint32_t> Columns;
  std::vector<double> Labels; // 1 = failed
  size_t numRuns() const { return Labels.size(); }
  size_t numFeatures() const { return FeatureToPred.size(); }
};

Design buildDesign(const ReportSet &Set) {
  Design D;
  std::vector<int64_t> PredToFeature(Set.numPredicates(), -1);
  for (size_t Run = 0; Run < Set.size(); ++Run)
    for (const auto &[Pred, Count] : Set[Run].Counts.TruePredicates)
      if (Count > 0 && PredToFeature[Pred] < 0) {
        PredToFeature[Pred] = static_cast<int64_t>(D.FeatureToPred.size());
        D.FeatureToPred.push_back(Pred);
      }

  D.RowStart.reserve(Set.size() + 1);
  D.RowStart.push_back(0);
  D.Labels.reserve(Set.size());
  for (size_t Run = 0; Run < Set.size(); ++Run) {
    for (const auto &[Pred, Count] : Set[Run].Counts.TruePredicates)
      if (Count > 0)
        D.Columns.push_back(static_cast<uint32_t>(PredToFeature[Pred]));
    D.RowStart.push_back(D.Columns.size());
    D.Labels.push_back(Set[Run].Failed ? 1.0 : 0.0);
  }
  return D;
}

/// Numerically stable log(1 + exp(M)).
double logistic(double M) {
  if (M > 0.0)
    return M + std::log1p(std::exp(-M));
  return std::log1p(std::exp(M));
}

/// Mean logistic loss at the given margins.
double smoothLoss(const Design &D, const std::vector<double> &Margins) {
  double Loss = 0.0;
  for (size_t I = 0; I < D.numRuns(); ++I)
    Loss += logistic(Margins[I]) - D.Labels[I] * Margins[I];
  return Loss / static_cast<double>(D.numRuns());
}

void computeMargins(const Design &D, const std::vector<double> &W, double B,
                    std::vector<double> &Margins) {
  Margins.assign(D.numRuns(), B);
  for (size_t I = 0; I < D.numRuns(); ++I)
    for (size_t K = D.RowStart[I]; K < D.RowStart[I + 1]; ++K)
      Margins[I] += W[D.Columns[K]];
}

double softThreshold(double X, double T) {
  if (X > T)
    return X - T;
  if (X < -T)
    return X + T;
  return 0.0;
}

} // namespace

LogRegModel sbi::trainL1LogReg(const ReportSet &Set,
                               const LogRegOptions &Options) {
  Design D = buildDesign(Set);
  size_t NumFeatures = D.numFeatures();
  size_t NumRuns = D.numRuns();

  LogRegModel Model;
  Model.Weights.assign(Set.numPredicates(), 0.0);
  if (NumRuns == 0)
    return Model;
  if (NumFeatures == 0) {
    // No features: the optimum is the base-rate log-odds (smoothed so
    // all-failing / all-passing sets stay finite).
    double Failures = 0.0;
    for (double Label : D.Labels)
      Failures += Label;
    double P = (Failures + 0.5) / (static_cast<double>(NumRuns) + 1.0);
    Model.Intercept = std::log(P / (1.0 - P));
    return Model;
  }

  // FISTA with backtracking on the smooth part of the objective.
  std::vector<double> W(NumFeatures, 0.0), WPrev(NumFeatures, 0.0);
  std::vector<double> Y = W; // Momentum point.
  double B = 0.0, BPrev = 0.0, YB = 0.0;
  double Theta = 1.0;
  double Step = 1.0;

  std::vector<double> Margins, Grad(NumFeatures), TrialMargins;
  std::vector<double> Trial(NumFeatures);

  auto evalAt = [&](const std::vector<double> &Wx, double Bx,
                    std::vector<double> &MarginsOut) {
    computeMargins(D, Wx, Bx, MarginsOut);
    return smoothLoss(D, MarginsOut);
  };

  double PrevObjective = HUGE_VAL;
  int Iter = 0;
  for (; Iter < Options.MaxIterations; ++Iter) {
    double LossY = evalAt(Y, YB, Margins);

    // Gradient of the smooth loss at the momentum point.
    std::fill(Grad.begin(), Grad.end(), 0.0);
    double GradB = 0.0;
    for (size_t I = 0; I < NumRuns; ++I) {
      double P = 1.0 / (1.0 + std::exp(-Margins[I]));
      double R = (P - D.Labels[I]) / static_cast<double>(NumRuns);
      GradB += R;
      for (size_t K = D.RowStart[I]; K < D.RowStart[I + 1]; ++K)
        Grad[D.Columns[K]] += R;
    }

    // Backtracking line search for the proximal step.
    double TrialB = 0.0;
    double LossTrial = 0.0;
    while (true) {
      double QuadGap = 0.0;
      for (size_t J = 0; J < NumFeatures; ++J) {
        Trial[J] = softThreshold(Y[J] - Step * Grad[J],
                                 Step * Options.Lambda);
        double Delta = Trial[J] - Y[J];
        QuadGap += Delta * (Grad[J] + Delta / (2.0 * Step));
      }
      TrialB = YB - Step * GradB;
      double DeltaB = TrialB - YB;
      QuadGap += DeltaB * (GradB + DeltaB / (2.0 * Step));

      LossTrial = evalAt(Trial, TrialB, TrialMargins);
      if (LossTrial <= LossY + QuadGap + 1e-12)
        break;
      Step *= 0.5;
      if (Step < 1e-10)
        break;
    }

    WPrev.swap(W);
    W = Trial;
    BPrev = B;
    B = TrialB;

    // FISTA momentum update.
    double ThetaNext = (1.0 + std::sqrt(1.0 + 4.0 * Theta * Theta)) / 2.0;
    double Momentum = (Theta - 1.0) / ThetaNext;
    for (size_t J = 0; J < NumFeatures; ++J)
      Y[J] = W[J] + Momentum * (W[J] - WPrev[J]);
    YB = B + Momentum * (B - BPrev);
    Theta = ThetaNext;

    double L1 = 0.0;
    for (double V : W)
      L1 += std::fabs(V);
    double Objective = LossTrial + Options.Lambda * L1;
    if (std::fabs(PrevObjective - Objective) <
        Options.Tolerance * std::max(1.0, std::fabs(Objective))) {
      PrevObjective = Objective;
      ++Iter;
      break;
    }
    PrevObjective = Objective;
  }

  Model.Intercept = B;
  Model.Iterations = Iter;
  Model.FinalObjective = PrevObjective;
  for (size_t J = 0; J < NumFeatures; ++J)
    Model.Weights[D.FeatureToPred[J]] = W[J];
  return Model;
}

LogRegModel sbi::trainForSparsity(const ReportSet &Set, int MaxActive,
                                  const std::vector<double> &LambdaPath) {
  LogRegModel Fallback;
  bool HaveFallback = false;
  for (double Lambda : LambdaPath) {
    LogRegOptions Options;
    Options.Lambda = Lambda;
    LogRegModel Model = trainL1LogReg(Set, Options);
    int Active = Model.numNonzero();
    if (Active > 0 && Active <= MaxActive)
      return Model;
    if (!HaveFallback && Active > 0) {
      Fallback = std::move(Model);
      HaveFallback = true;
    }
  }
  return Fallback;
}
