//===- vm/Bytecode.h - MicroC bytecode definitions ------------------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact stack bytecode for MicroC, the repository's second execution
/// engine. The paper's substrate is compiled C; the bytecode VM plays that
/// role here — faster campaigns than the tree-walking interpreter while
/// preserving *identical observable semantics* (output, traps, exit codes,
/// ground-truth markers, and the exact sequence of instrumentation events,
/// so sampled feedback reports match bit for bit under the same seed).
/// Differential tests in tests/vm/ hold the two engines to that contract.
///
/// Observer integration mirrors the interpreter: conditionals compile to
/// observed jumps (branches scheme), every call site is followed by
/// ObserveCall (returns scheme), and instrumented scalar assignments end
/// with ObserveAssign (scalar-pairs scheme).
///
//===----------------------------------------------------------------------===//

#ifndef SBI_VM_BYTECODE_H
#define SBI_VM_BYTECODE_H

#include "lang/AST.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sbi {

enum class Opcode : uint8_t {
  // Stack and constants.
  PushInt,  ///< A = index into IntPool.
  PushStr,  ///< A = index into StrPool.
  PushNull,
  PushUnit,
  Pop,
  Dup,

  // Variables. Loads trap on Unit (uninitialized) with the variable name
  // (B = StrPool index); stores enforce the declared kind (C = VarKind).
  LoadLocal,   ///< A = slot, B = name.
  LoadGlobal,  ///< A = slot, B = name.
  StoreLocal,  ///< A = slot, B = name, C = VarKind.
  StoreGlobal, ///< A = slot, B = name, C = VarKind.

  // Operators (semantics shared with the interpreter via runtime/Semantics).
  Binary, ///< A = BinaryOp (never And/Or, which are control flow).
  Unary,  ///< A = UnaryOp.
  ToBool, ///< Pop, truthiness-check (may trap), push 0/1.

  // Control flow. Observed jumps drive the branches instrumentation
  // scheme: pop the condition, truthiness-check, report onBranch(B, taken),
  // then jump to A when not-taken (IfFalse) / taken (IfTrue). The plain
  // conditional jumps are identical minus the observer report; the compiler
  // emits them for branches whose instrumentation was statically pruned.
  Jump,            ///< A = target pc.
  ObsJumpIfFalse,  ///< A = target pc, B = AST node id.
  ObsJumpIfTrue,   ///< A = target pc, B = AST node id.
  JumpIfFalse,     ///< A = target pc, B = AST node id (unobserved).
  JumpIfTrue,      ///< A = target pc, B = AST node id (unobserved).

  // Heap access (shared silent-overrun semantics).
  IndexLoad,  ///< stack: base, subscript -> value.
  IndexStore, ///< stack: base, subscript, value.
  FieldLoad,  ///< A = field name (StrPool); stack: base -> value.
  FieldStore, ///< A = field name; stack: base, value.
  NewRec,     ///< A = index into Records.

  // Calls.
  Call,          ///< A = chunk index, B = arg count.
  CallIntrinsic, ///< A = intrinsic id, B = arg count.
  ObserveCall,   ///< A = node id; peek top, report ints (returns scheme).
  ObserveAssign, ///< A = node id; pop stored value, report (scalar-pairs).
  Return,        ///< Pop result, pop frame.
  Halt,          ///< End of the global-initializer chunk.
};

const char *opcodeName(Opcode Op);

struct Instr {
  Opcode Op;
  int32_t A = 0;
  int32_t B = 0;
  int32_t C = 0;
  /// Source line, for traps and stack traces.
  int32_t Line = 0;
};

/// One compiled function.
struct Chunk {
  std::string Name;
  int NumLocals = 0;
  int NumParams = 0;
  int Line = 0; ///< Declaration line (initial frame line).
  std::vector<Instr> Code;
};

/// A whole compiled program. Must not outlive the Program it was compiled
/// from (records are referenced, not copied).
struct CompiledProgram {
  std::vector<Chunk> Chunks;
  Chunk InitChunk; ///< Global initializers; ends with Halt.
  std::vector<int64_t> IntPool;
  std::vector<std::string> StrPool;
  std::vector<const RecordDecl *> Records;
  int MainChunk = -1;
  uint32_t NumGlobals = 0;

  /// Human-readable disassembly (for tests and debugging).
  std::string disassemble() const;
};

} // namespace sbi

#endif // SBI_VM_BYTECODE_H
