//===- vm/Bytecode.h - MicroC bytecode definitions ------------------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact stack bytecode for MicroC, the repository's second execution
/// engine. The paper's substrate is compiled C; the bytecode VM plays that
/// role here — faster campaigns than the tree-walking interpreter while
/// preserving *identical observable semantics* (output, traps, exit codes,
/// ground-truth markers, and the exact sequence of instrumentation events,
/// so sampled feedback reports match bit for bit under the same seed).
/// Differential tests in tests/vm/ hold the two engines to that contract.
///
/// Observer integration mirrors the interpreter: conditionals compile to
/// observed jumps (branches scheme), every call site is followed by
/// ObserveCall (returns scheme), and instrumented scalar assignments end
/// with ObserveAssign (scalar-pairs scheme).
///
//===----------------------------------------------------------------------===//

#ifndef SBI_VM_BYTECODE_H
#define SBI_VM_BYTECODE_H

#include "lang/AST.h"
#include "runtime/Value.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sbi {

/// Every opcode, in dispatch order. The X-macro keeps the enum, the
/// computed-goto label table in VM.cpp, and the disassembler mnemonics in
/// lockstep — adding an opcode here without a handler is a compile error in
/// both dispatch modes.
///
/// Stack and constants:
///   PushInt   A = index into IntPool.
///   PushStr   A = index into StrPool.
///   Pop/Dup   plain stack manipulation.
/// Variables — loads trap on Unit (uninitialized) with the variable name
/// (B = StrPool index); stores enforce the declared kind (C = VarKind):
///   LoadLocal/LoadGlobal    A = slot, B = name.
///   StoreLocal/StoreGlobal  A = slot, B = name, C = VarKind.
/// Operators (semantics shared with the interpreter via runtime/Semantics):
///   Binary  A = BinaryOp (never And/Or, which are control flow).
///   Unary   A = UnaryOp.
///   ToBool  pop, truthiness-check (may trap), push 0/1.
/// Control flow — observed jumps drive the branches instrumentation scheme:
/// pop the condition, truthiness-check, report onBranch(B, taken), then
/// jump to A when not-taken (IfFalse) / taken (IfTrue). The plain
/// conditional jumps are identical minus the observer report; the compiler
/// emits them for branches whose instrumentation was statically pruned.
/// Jump targets are chunk-relative pcs in Chunk::Code and absolute pcs in
/// the flattened stream (CompiledProgram::Flat):
///   Jump                        A = target pc.
///   ObsJumpIfFalse/IfTrue       A = target pc, B = AST node id.
///   JumpIfFalse/IfTrue          A = target pc, B = node id (unobserved).
/// Heap access (shared silent-overrun semantics):
///   IndexLoad   stack: base, subscript -> value.
///   IndexStore  stack: base, subscript, value.
///   FieldLoad   A = field name (StrPool); stack: base -> value.
///   FieldStore  A = field name; stack: base, value.
///   NewRec      A = index into Records.
/// Calls:
///   Call           A = chunk index, B = arg count.
///   CallIntrinsic  A = intrinsic id, B = arg count.
///   ObserveCall    A = node id; peek top, report ints (returns scheme).
///   ObserveAssign  A = node id; pop stored value, report (scalar-pairs).
///   Return         pop result, pop frame.
///   Halt           end of the global-initializer chunk.
/// Superinstructions — fused by the compiler's peephole pass for the
/// instrumentation-heavy adjacent pairs measured in trace summaries (see
/// Compiler.cpp fuseChunk); each is exactly the sequence of its parts:
///   LocalObsJumpIfFalse/IfTrue  LoadLocal + observed jump.
///                               A = target, B = node id, C = slot,
///                               D = name.
///   LocalJumpIfFalse/IfTrue     LoadLocal + plain conditional jump.
///                               A = target, B = node id, C = slot,
///                               D = name.
///   PushIntBinary               PushInt + Binary: pop lhs, rhs from the
///                               pool. A = BinaryOp, B = IntPool index.
///   LocalBinary                 LoadLocal + Binary: pop lhs, rhs from a
///                               local. A = BinaryOp, B = slot, D = name.
#define SBI_VM_OPCODES(X)                                                    \
  X(PushInt)                                                                 \
  X(PushStr)                                                                 \
  X(PushNull)                                                                \
  X(PushUnit)                                                                \
  X(Pop)                                                                     \
  X(Dup)                                                                     \
  X(LoadLocal)                                                               \
  X(LoadGlobal)                                                              \
  X(StoreLocal)                                                              \
  X(StoreGlobal)                                                             \
  X(Binary)                                                                  \
  X(Unary)                                                                   \
  X(ToBool)                                                                  \
  X(Jump)                                                                    \
  X(ObsJumpIfFalse)                                                          \
  X(ObsJumpIfTrue)                                                           \
  X(JumpIfFalse)                                                             \
  X(JumpIfTrue)                                                              \
  X(IndexLoad)                                                               \
  X(IndexStore)                                                              \
  X(FieldLoad)                                                               \
  X(FieldStore)                                                              \
  X(NewRec)                                                                  \
  X(Call)                                                                    \
  X(CallIntrinsic)                                                           \
  X(ObserveCall)                                                             \
  X(ObserveAssign)                                                           \
  X(Return)                                                                  \
  X(Halt)                                                                    \
  X(LocalObsJumpIfFalse)                                                     \
  X(LocalObsJumpIfTrue)                                                      \
  X(LocalJumpIfFalse)                                                        \
  X(LocalJumpIfTrue)                                                         \
  X(PushIntBinary)                                                           \
  X(LocalBinary)

enum class Opcode : uint8_t {
#define SBI_VM_OPCODE_ENUM(name) name,
  SBI_VM_OPCODES(SBI_VM_OPCODE_ENUM)
#undef SBI_VM_OPCODE_ENUM
};

const char *opcodeName(Opcode Op);

/// Which dispatch loop this build of the VM runs: "computed-goto" when the
/// compiler supports label-as-value direct threading (GCC/Clang, unless
/// SBI_VM_FORCE_SWITCH_DISPATCH was configured), "switch" for the portable
/// fallback. Observable behaviour is identical; only throughput differs.
const char *vmDispatchKind();

struct Instr {
  Opcode Op;
  int32_t A = 0;
  int32_t B = 0;
  int32_t C = 0;
  /// Fourth operand, used only by superinstructions (the fused pair's
  /// displaced operand, e.g. the variable-name StrPool index of a fused
  /// LoadLocal).
  int32_t D = 0;
  /// Source line, for traps and stack traces.
  int32_t Line = 0;
};

/// One compiled function.
struct Chunk {
  std::string Name;
  int NumLocals = 0;
  int NumParams = 0;
  int Line = 0; ///< Declaration line (initial frame line).
  std::vector<Instr> Code;
};

/// A whole compiled program. Must not outlive the Program it was compiled
/// from (records are referenced, not copied).
struct CompiledProgram {
  std::vector<Chunk> Chunks;
  Chunk InitChunk; ///< Global initializers; ends with Halt.
  std::vector<int64_t> IntPool;
  std::vector<std::string> StrPool;
  std::vector<const RecordDecl *> Records;
  int MainChunk = -1;
  uint32_t NumGlobals = 0;

  /// The execution form the VM dispatches over: every chunk's (fused) code
  /// concatenated into one stream with jump targets rewritten to absolute
  /// pcs. Chunk K starts at FlatStart[K]; the init chunk at InitStart.
  /// Built by flatten(); Chunk::Code remains the per-function view for
  /// disassembly and tests.
  std::vector<Instr> Flat;
  std::vector<uint32_t> FlatStart;
  uint32_t InitStart = 0;

  /// Pre-built shared string handles, one per StrPool entry, so PushStr
  /// copies a handle instead of allocating per run. Safe to share across
  /// concurrent runs (handles are only copied).
  std::vector<Value> StrValues;

  /// (Re)builds Flat/FlatStart/InitStart and StrValues from the chunks.
  /// compileProgram calls this; call it manually after constructing or
  /// editing chunks by hand (tests).
  void flatten();

  /// Human-readable disassembly (for tests and debugging).
  std::string disassemble() const;
};

} // namespace sbi

#endif // SBI_VM_BYTECODE_H
