//===- vm/VM.cpp - MicroC bytecode virtual machine -------------------------===//
//
// The dispatch loop runs over CompiledProgram::Flat — every chunk fused and
// concatenated with absolute jump targets — in one of two interchangeable
// forms selected at configure time:
//
//   - Direct-threaded (SBI_VM_COMPUTED_GOTO): each handler ends by jumping
//     through a label table indexed by the next opcode, so the indirect
//     branch is replicated per handler and the branch predictor learns the
//     per-opcode successor distribution. GCC/Clang only.
//   - Portable switch: the classic fetch/switch loop, for compilers without
//     labels-as-values and for the forced-fallback CI configuration.
//
// Handler bodies are written once and stamped into whichever skeleton is
// active via the VM_CASE/VM_NEXT macros; observable behaviour is identical
// by construction, and the engine differential tests hold both forms to the
// interpreter's semantics.
//
// Frames do not own locals: all locals live in one arena vector, each frame
// addressing a contiguous [LocalsBase, LocalsBase + NumLocals) slice, so a
// call is an arena extension instead of a vector allocation. The arena only
// grows inside Call (which refreshes the cached base pointer) and shrinks
// inside Return (which never reallocates), so the pointer stays valid
// between frame changes.
//
// Sampling fast path: when the observer exposes a SamplingAccel, an
// observed event whose node maps to a single sampled site is consumed by
// decrementing that site's geometric-skip countdown in place — the same
// decrement ReportCollector::sampleDecision would have performed — and the
// observer virtual call happens only when the countdown is exhausted (a
// sample) or uninitialized (first reach; the collector seeds the site's RNG
// stream). Reports therefore stay bit-identical at fixed seeds.
//
//===----------------------------------------------------------------------===//

#include "vm/VM.h"

#include "lang/Intrinsics.h"
#include "obs/Telemetry.h"
#include "obs/Tracer.h"
#include "runtime/Semantics.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace sbi;

namespace {

/// Inline int x int evaluation of \p Op, mirroring semBinaryOp exactly
/// (wrapping arithmetic, INT64_MIN / -1 results, int Eq/Ne as value
/// equality). Returns false — leaving the slow semBinaryOp call to run and
/// trap — only for division/remainder by zero. And/Or never reach Binary.
inline bool intBinFast(BinaryOp Op, int64_t A, int64_t B, int64_t &R) {
  auto WA = static_cast<uint64_t>(A);
  auto WB = static_cast<uint64_t>(B);
  switch (Op) {
  case BinaryOp::Add:
    R = static_cast<int64_t>(WA + WB);
    return true;
  case BinaryOp::Sub:
    R = static_cast<int64_t>(WA - WB);
    return true;
  case BinaryOp::Mul:
    R = static_cast<int64_t>(WA * WB);
    return true;
  case BinaryOp::Div:
    if (B == 0)
      return false;
    R = (A == INT64_MIN && B == -1) ? INT64_MIN : A / B;
    return true;
  case BinaryOp::Rem:
    if (B == 0)
      return false;
    R = (A == INT64_MIN && B == -1) ? 0 : A % B;
    return true;
  case BinaryOp::Lt:
    R = A < B ? 1 : 0;
    return true;
  case BinaryOp::Le:
    R = A <= B ? 1 : 0;
    return true;
  case BinaryOp::Gt:
    R = A > B ? 1 : 0;
    return true;
  case BinaryOp::Ge:
    R = A >= B ? 1 : 0;
    return true;
  case BinaryOp::Eq:
    R = A == B ? 1 : 0;
    return true;
  case BinaryOp::Ne:
    R = A != B ? 1 : 0;
    return true;
  default:
    return false;
  }
}

/// Inline declared-kind admission test, mirroring semCheckKind's table.
inline bool kindOk(VarKind DeclaredKind, const Value &V) {
  switch (DeclaredKind) {
  case VarKind::Int:
    return V.isInt();
  case VarKind::Str:
    return V.isStr() || V.isNull();
  case VarKind::Arr:
    return V.isArr() || V.isNull();
  case VarKind::Rec:
    return V.isRec() || V.isNull();
  }
  return false;
}

class VM final : public EvalSink {
public:
  VM(const CompiledProgram &Compiled, const RunConfig &Config)
      : Compiled(Compiled), Config(Config) {
    Operands.reserve(256);
    LocalsArena.reserve(1024);
    Frames.reserve(static_cast<size_t>(std::max(Config.MaxCallDepth, 1)));
  }

  RunOutcome run();

  // --- EvalSink -----------------------------------------------------------
  void trap(TrapKind Kind, std::string Message) override {
    if (Stopped)
      return;
    Stopped = true;
    Outcome.Trap = Kind;
    Outcome.TrapLine = CurLine;
    Outcome.TrapMessage = std::move(Message);
    captureStack();
  }

  void emitOutput(const std::string &Text) override {
    semAppendOutput(Outcome.Output, Text);
  }

  void exitRun(int Code) override {
    Outcome.ExitCode = Code;
    Stopped = true;
  }

  void recordBug(int BugId) override {
    Outcome.BugsTriggered.push_back(BugId);
  }

  const std::vector<std::string> &inputArgs() const override {
    return Config.Args;
  }

  size_t overrunPad() const override { return Config.OverrunPad; }

private:
  /// A call record. Locals live in LocalsArena, not here, so frames are
  /// plain words and a push costs no allocation.
  struct Frame {
    const Chunk *C = nullptr; ///< For stack-trace names and NumLocals.
    size_t LocalsBase = 0;    ///< This frame's slice of LocalsArena.
    size_t RetPc = 0;         ///< Absolute pc to resume the caller at.
    /// Line of the call instruction (for outer stack frames).
    int CallLine = 0;
  };

  void captureStack();
  void execute(size_t StartPc, const Chunk &Entry);

  /// Pops the operand stack; underflow is a hard BadBytecode trap (not an
  /// assert) so corrupted or hand-mangled bytecode cannot read freed
  /// memory in Release builds — the same defensive posture as the
  /// MaxCallDepth guard.
  Value pop() {
    if (Operands.empty()) {
      trap(TrapKind::BadBytecode, "operand stack underflow");
      return Value();
    }
    Value V = std::move(Operands.back());
    Operands.pop_back();
    return V;
  }

  /// True when the observed event at \p NodeId is fully consumed without
  /// calling the observer: either the node has no enabled site, or every
  /// sampled site's countdown is mid-skip and one decrement each — the
  /// exact decrements sampleDecision would apply — records the non-samples.
  bool sampleSkip(int NodeId) {
    if (!Accel)
      return false;
    uint32_t Site = Accel->siteFor(NodeId);
    if (Site == SamplingAccel::SkipNode)
      return true;
    if (Site == SamplingAccel::CallObserver)
      return false;
    if (Site == SamplingAccel::FanNode) {
      // Check-then-commit: mutate nothing until every site in the fan has
      // independently decided "skip". If any site samples this reach (or
      // needs its first draw), the observer replays the whole fan itself.
      auto Node = static_cast<size_t>(static_cast<uint32_t>(NodeId));
      const uint32_t *First = Accel->FanSites.data() + Accel->FanStart[Node];
      const uint32_t *Last =
          Accel->FanSites.data() + Accel->FanStart[Node + 1];
      for (const uint32_t *P = First; P != Last; ++P) {
        uint64_t C = Accel->Countdown[*P];
        if (C == 0 || C == SamplingAccel::Uninit)
          return false;
      }
      for (const uint32_t *P = First; P != Last; ++P)
        --Accel->Countdown[*P];
      return true;
    }
    uint64_t C = Accel->Countdown[Site];
    if (C != 0 && C != SamplingAccel::Uninit) {
      Accel->Countdown[Site] = C - 1;
      return true;
    }
    // Exhausted (a sample) or uninitialized (first reach of the run):
    // the collector must redraw/seed, so take the virtual call.
    return false;
  }

  void observeBranch(int NodeId, bool Taken) {
    if (Config.Observer && !sampleSkip(NodeId))
      Config.Observer->onBranch(NodeId, Taken);
  }

  const CompiledProgram &Compiled;
  const RunConfig &Config;
  const SamplingAccel *Accel = nullptr;
  RunOutcome Outcome;
  bool Stopped = false;
  std::vector<Value> Globals;
  std::vector<Value> Operands;
  std::vector<Value> LocalsArena;
  std::vector<Frame> Frames;
  uint64_t Steps = 0;
  int CurLine = 0;
};

} // namespace

void VM::captureStack() {
  Outcome.StackTrace.clear();
  int InnerLine = CurLine;
  for (auto It = Frames.rbegin(); It != Frames.rend(); ++It) {
    Outcome.StackTrace.push_back(
        format("%s@%d", It->C->Name.c_str(), InnerLine));
    InnerLine = It->CallLine;
  }
}

RunOutcome VM::run() {
  Globals.resize(Compiled.NumGlobals);
  Accel = Config.Observer ? Config.Observer->samplingAccel() : nullptr;
  execute(Compiled.InitStart, Compiled.InitChunk);

  if (!Stopped) {
    assert(Compiled.MainChunk >= 0);
    auto Main = static_cast<size_t>(Compiled.MainChunk);
    execute(Compiled.FlatStart[Main], Compiled.Chunks[Main]);
    if (!Stopped && !Operands.empty()) {
      Value Result = pop();
      if (Result.isInt())
        Outcome.ExitCode = static_cast<int>(Result.asInt());
    }
  }

  std::sort(Outcome.BugsTriggered.begin(), Outcome.BugsTriggered.end());
  Outcome.BugsTriggered.erase(std::unique(Outcome.BugsTriggered.begin(),
                                          Outcome.BugsTriggered.end()),
                              Outcome.BugsTriggered.end());
  Outcome.Steps = Steps;
  // Telemetry is a once-per-run flush of the locally maintained dispatch
  // count; the dispatch loop itself carries no telemetry.
#if !defined(SBI_TELEMETRY_DISABLED)
  if (Telemetry::enabled()) {
    static Counter &RunsCounter =
        Telemetry::metrics().registerCounter("vm.runs");
    static Counter &DispatchCounter =
        Telemetry::metrics().registerCounter("vm.dispatches");
    RunsCounter.add(1);
    DispatchCounter.add(Steps);
  }
#endif
  return std::move(Outcome);
}

// The two dispatch skeletons. VM_NEXT() ends a handler: it performs the
// common per-instruction prologue (stop check, pc bounds check, fetch, line
// bookkeeping, step budget) and transfers to the next handler — via the
// label table under computed goto, via the enclosing for/switch otherwise.
#if SBI_VM_COMPUTED_GOTO

#define VM_PROLOGUE()                                                        \
  do {                                                                       \
    if (Stopped)                                                             \
      return;                                                                \
    if (Pc >= CodeSize) {                                                    \
      trap(TrapKind::BadBytecode, "program counter out of range");           \
      return;                                                                \
    }                                                                        \
    In = Code + Pc;                                                          \
    ++Pc;                                                                    \
    CurLine = In->Line;                                                      \
    if (++Steps >= Config.StepLimit) {                                       \
      trap(TrapKind::StepLimit, "step limit exceeded");                      \
      return;                                                                \
    }                                                                        \
  } while (0)

#define VM_CASE(name) Op_##name:
#define VM_NEXT()                                                            \
  do {                                                                       \
    VM_PROLOGUE();                                                           \
    goto *Labels[static_cast<size_t>(In->Op)];                               \
  } while (0)

#else // Portable switch fallback.

#define VM_CASE(name) case Opcode::name:
#define VM_NEXT() break

#endif

void VM::execute(size_t StartPc, const Chunk &Entry) {
  Operands.clear();
  Frames.clear();
  LocalsArena.clear();
  LocalsArena.resize(static_cast<size_t>(Entry.NumLocals));
  Frame Top;
  Top.C = &Entry;
  Top.CallLine = Entry.Line;
  Frames.push_back(Top);

  const Instr *Code = Compiled.Flat.data();
  const size_t CodeSize = Compiled.Flat.size();
  const Instr *In = nullptr;
  Value *Locals = LocalsArena.data();
  size_t Pc = StartPc;

#if SBI_VM_COMPUTED_GOTO
  static const void *const Labels[] = {
#define SBI_VM_OPCODE_LABEL(name) &&Op_##name,
      SBI_VM_OPCODES(SBI_VM_OPCODE_LABEL)
#undef SBI_VM_OPCODE_LABEL
  };
  VM_NEXT();
#else
  for (;;) {
    if (Stopped)
      return;
    if (Pc >= CodeSize) {
      trap(TrapKind::BadBytecode, "program counter out of range");
      return;
    }
    In = Code + Pc;
    ++Pc;
    CurLine = In->Line;
    if (++Steps >= Config.StepLimit) {
      trap(TrapKind::StepLimit, "step limit exceeded");
      return;
    }
    switch (In->Op) {
#endif

  VM_CASE(PushInt) {
    Operands.push_back(
        Value::makeInt(Compiled.IntPool[static_cast<size_t>(In->A)]));
  }
  VM_NEXT();

  VM_CASE(PushStr) {
    Operands.push_back(Compiled.StrValues[static_cast<size_t>(In->A)]);
  }
  VM_NEXT();

  VM_CASE(PushNull) {
    Operands.push_back(Value::makeNull());
  }
  VM_NEXT();

  VM_CASE(PushUnit) {
    Operands.push_back(Value());
  }
  VM_NEXT();

  VM_CASE(Pop) {
    pop();
  }
  VM_NEXT();

  VM_CASE(Dup) {
    if (Operands.empty())
      trap(TrapKind::BadBytecode, "operand stack underflow");
    else
      Operands.push_back(Operands.back());
  }
  VM_NEXT();

  VM_CASE(LoadLocal) {
    const Value &V = Locals[static_cast<size_t>(In->A)];
    if (V.isUnit()) {
      trap(TrapKind::KindError,
           format("use of uninitialized variable '%s'",
                  Compiled.StrPool[static_cast<size_t>(In->B)].c_str()));
    } else {
      Operands.push_back(V);
    }
  }
  VM_NEXT();

  VM_CASE(LoadGlobal) {
    const Value &V = Globals[static_cast<size_t>(In->A)];
    if (V.isUnit()) {
      trap(TrapKind::KindError,
           format("use of uninitialized variable '%s'",
                  Compiled.StrPool[static_cast<size_t>(In->B)].c_str()));
    } else {
      Operands.push_back(V);
    }
  }
  VM_NEXT();

  VM_CASE(StoreLocal) {
    if (!Operands.empty() &&
        kindOk(static_cast<VarKind>(In->C), Operands.back())) {
      Locals[static_cast<size_t>(In->A)] = std::move(Operands.back());
      Operands.pop_back();
      VM_NEXT();
    }
    Value V = pop();
    if (!Stopped &&
        semCheckKind(static_cast<VarKind>(In->C), V,
                     Compiled.StrPool[static_cast<size_t>(In->B)], *this))
      Locals[static_cast<size_t>(In->A)] = std::move(V);
  }
  VM_NEXT();

  VM_CASE(StoreGlobal) {
    if (!Operands.empty() &&
        kindOk(static_cast<VarKind>(In->C), Operands.back())) {
      Globals[static_cast<size_t>(In->A)] = std::move(Operands.back());
      Operands.pop_back();
      VM_NEXT();
    }
    Value V = pop();
    if (!Stopped &&
        semCheckKind(static_cast<VarKind>(In->C), V,
                     Compiled.StrPool[static_cast<size_t>(In->B)], *this))
      Globals[static_cast<size_t>(In->A)] = std::move(V);
  }
  VM_NEXT();

  VM_CASE(Binary) {
    size_t N = Operands.size();
    if (N >= 2 && Operands[N - 2].isInt() && Operands[N - 1].isInt()) {
      int64_t R;
      if (intBinFast(static_cast<BinaryOp>(In->A), Operands[N - 2].asInt(),
                     Operands[N - 1].asInt(), R)) {
        Operands.pop_back();
        Operands.back() = Value::makeInt(R);
        VM_NEXT();
      }
    }
    Value Rhs = pop();
    Value Lhs = pop();
    Operands.push_back(
        semBinaryOp(static_cast<BinaryOp>(In->A), Lhs, Rhs, *this));
  }
  VM_NEXT();

  VM_CASE(Unary) {
    Value V = pop();
    Operands.push_back(semUnaryOp(static_cast<UnaryOp>(In->A), V, *this));
  }
  VM_NEXT();

  VM_CASE(ToBool) {
    if (!Operands.empty() && Operands.back().isInt()) {
      Operands.back() =
          Value::makeInt(Operands.back().asInt() != 0 ? 1 : 0);
      VM_NEXT();
    }
    Value V = pop();
    bool B = semTruthy(V, *this);
    Operands.push_back(Value::makeInt(B ? 1 : 0));
  }
  VM_NEXT();

  VM_CASE(Jump) {
    Pc = static_cast<size_t>(In->A);
  }
  VM_NEXT();

  VM_CASE(ObsJumpIfFalse) {
    if (!Operands.empty() && Operands.back().isInt()) {
      bool Taken = Operands.back().asInt() != 0;
      Operands.pop_back();
      observeBranch(In->B, Taken);
      if (!Taken)
        Pc = static_cast<size_t>(In->A);
      VM_NEXT();
    }
    Value V = pop();
    bool Taken = semTruthy(V, *this);
    if (!Stopped) {
      observeBranch(In->B, Taken);
      if (!Taken)
        Pc = static_cast<size_t>(In->A);
    }
  }
  VM_NEXT();

  VM_CASE(ObsJumpIfTrue) {
    if (!Operands.empty() && Operands.back().isInt()) {
      bool Taken = Operands.back().asInt() != 0;
      Operands.pop_back();
      observeBranch(In->B, Taken);
      if (Taken)
        Pc = static_cast<size_t>(In->A);
      VM_NEXT();
    }
    Value V = pop();
    bool Taken = semTruthy(V, *this);
    if (!Stopped) {
      observeBranch(In->B, Taken);
      if (Taken)
        Pc = static_cast<size_t>(In->A);
    }
  }
  VM_NEXT();

  VM_CASE(JumpIfFalse) {
    if (!Operands.empty() && Operands.back().isInt()) {
      bool Taken = Operands.back().asInt() != 0;
      Operands.pop_back();
      if (!Taken)
        Pc = static_cast<size_t>(In->A);
      VM_NEXT();
    }
    Value V = pop();
    bool Taken = semTruthy(V, *this);
    if (!Stopped && !Taken)
      Pc = static_cast<size_t>(In->A);
  }
  VM_NEXT();

  VM_CASE(JumpIfTrue) {
    if (!Operands.empty() && Operands.back().isInt()) {
      bool Taken = Operands.back().asInt() != 0;
      Operands.pop_back();
      if (Taken)
        Pc = static_cast<size_t>(In->A);
      VM_NEXT();
    }
    Value V = pop();
    bool Taken = semTruthy(V, *this);
    if (!Stopped && Taken)
      Pc = static_cast<size_t>(In->A);
  }
  VM_NEXT();

  VM_CASE(IndexLoad) {
    Value Subscript = pop();
    Value Base = pop();
    Value *Element = semResolveElement(Base, Subscript, *this);
    Operands.push_back(Element ? *Element : Value());
  }
  VM_NEXT();

  VM_CASE(IndexStore) {
    Value V = pop();
    Value Subscript = pop();
    Value Base = pop();
    if (Value *Element = semResolveElement(Base, Subscript, *this))
      *Element = std::move(V);
  }
  VM_NEXT();

  VM_CASE(FieldLoad) {
    Value Base = pop();
    Operands.push_back(semLoadField(
        Base, Compiled.StrPool[static_cast<size_t>(In->A)], *this));
  }
  VM_NEXT();

  VM_CASE(FieldStore) {
    Value V = pop();
    Value Base = pop();
    semStoreField(Base, Compiled.StrPool[static_cast<size_t>(In->A)],
                  std::move(V), *this);
  }
  VM_NEXT();

  VM_CASE(NewRec) {
    const RecordDecl *Decl = Compiled.Records[static_cast<size_t>(In->A)];
    auto Rec = std::make_shared<RecordObj>();
    Rec->Decl = Decl;
    Rec->Fields.assign(Decl->Fields.size(), Value::makeNull());
    Operands.push_back(Value::makeRec(std::move(Rec)));
  }
  VM_NEXT();

  VM_CASE(Call) {
    const Chunk &Callee = Compiled.Chunks[static_cast<size_t>(In->A)];
    if (static_cast<int>(Frames.size()) >= Config.MaxCallDepth) {
      trap(TrapKind::StackOverflow,
           format("call depth exceeded calling '%s'", Callee.Name.c_str()));
    } else {
      size_t Base = LocalsArena.size();
      LocalsArena.resize(Base + static_cast<size_t>(Callee.NumLocals));
      size_t NumArgs = static_cast<size_t>(In->B);
      for (size_t I = NumArgs; I > 0; --I)
        LocalsArena[Base + I - 1] = pop();
      if (!Stopped) {
        Frame NewFrame;
        NewFrame.C = &Callee;
        NewFrame.LocalsBase = Base;
        NewFrame.RetPc = Pc;
        NewFrame.CallLine = In->Line;
        Frames.push_back(NewFrame);
        Locals = LocalsArena.data() + Base;
        Pc = static_cast<size_t>(Compiled.FlatStart[static_cast<size_t>(In->A)]);
      }
    }
  }
  VM_NEXT();

  VM_CASE(CallIntrinsic) {
    size_t NumArgs = static_cast<size_t>(In->B);
    if (Operands.size() < NumArgs) {
      trap(TrapKind::BadBytecode, "operand stack underflow");
    } else {
      // The arguments already sit contiguously on top of the operand
      // stack, in call order — evaluate the intrinsic in place, then
      // replace them with the result. No intrinsic touches the operand
      // stack, so the pointer stays valid across the call.
      Value Result =
          semCallIntrinsic(In->A, intrinsicInfo(In->A).Name,
                           Operands.data() + (Operands.size() - NumArgs),
                           *this);
      Operands.resize(Operands.size() - NumArgs);
      Operands.push_back(std::move(Result));
    }
  }
  VM_NEXT();

  VM_CASE(ObserveCall) {
    if (Operands.empty())
      trap(TrapKind::BadBytecode, "operand stack underflow");
    else if (Config.Observer && Operands.back().isInt() &&
             !sampleSkip(In->A))
      Config.Observer->onScalarReturn(In->A, Operands.back().asInt());
  }
  VM_NEXT();

  VM_CASE(ObserveAssign) {
    Value V = pop();
    if (Config.Observer && V.isInt() && !sampleSkip(In->A))
      Config.Observer->onScalarAssign(
          In->A, V.asInt(),
          FrameView(Globals, Locals,
                    static_cast<size_t>(Frames.back().C->NumLocals)));
  }
  VM_NEXT();

  VM_CASE(Return) {
    Value Result = pop();
    Frame Done = Frames.back();
    Frames.pop_back();
    LocalsArena.resize(Done.LocalsBase); // Shrink: never reallocates.
    Operands.push_back(std::move(Result));
    if (Frames.empty())
      return;
    Pc = Done.RetPc;
    Locals = LocalsArena.data() + Frames.back().LocalsBase;
  }
  VM_NEXT();

  VM_CASE(Halt) {
    Frames.clear();
    return;
  }
  VM_NEXT();

  // The fused LoadLocal+conditional-jump handlers read the local in place:
  // an int local (the overwhelmingly common case — loop counters and flag
  // tests) branches with zero operand-stack traffic. The unfused sequence's
  // trap order is preserved: uninitialized (Unit) locals trap as the load
  // would, non-int non-unit locals trap through semTruthy as the jump
  // would.
  VM_CASE(LocalObsJumpIfFalse) {
    const Value &V = Locals[static_cast<size_t>(In->C)];
    if (V.isInt()) {
      bool Taken = V.asInt() != 0;
      observeBranch(In->B, Taken);
      if (!Taken)
        Pc = static_cast<size_t>(In->A);
    } else if (V.isUnit()) {
      trap(TrapKind::KindError,
           format("use of uninitialized variable '%s'",
                  Compiled.StrPool[static_cast<size_t>(In->D)].c_str()));
    } else {
      semTruthy(V, *this); // Traps KindError.
    }
  }
  VM_NEXT();

  VM_CASE(LocalObsJumpIfTrue) {
    const Value &V = Locals[static_cast<size_t>(In->C)];
    if (V.isInt()) {
      bool Taken = V.asInt() != 0;
      observeBranch(In->B, Taken);
      if (Taken)
        Pc = static_cast<size_t>(In->A);
    } else if (V.isUnit()) {
      trap(TrapKind::KindError,
           format("use of uninitialized variable '%s'",
                  Compiled.StrPool[static_cast<size_t>(In->D)].c_str()));
    } else {
      semTruthy(V, *this); // Traps KindError.
    }
  }
  VM_NEXT();

  VM_CASE(LocalJumpIfFalse) {
    const Value &V = Locals[static_cast<size_t>(In->C)];
    if (V.isInt()) {
      if (V.asInt() == 0)
        Pc = static_cast<size_t>(In->A);
    } else if (V.isUnit()) {
      trap(TrapKind::KindError,
           format("use of uninitialized variable '%s'",
                  Compiled.StrPool[static_cast<size_t>(In->D)].c_str()));
    } else {
      semTruthy(V, *this); // Traps KindError.
    }
  }
  VM_NEXT();

  VM_CASE(LocalJumpIfTrue) {
    const Value &V = Locals[static_cast<size_t>(In->C)];
    if (V.isInt()) {
      if (V.asInt() != 0)
        Pc = static_cast<size_t>(In->A);
    } else if (V.isUnit()) {
      trap(TrapKind::KindError,
           format("use of uninitialized variable '%s'",
                  Compiled.StrPool[static_cast<size_t>(In->D)].c_str()));
    } else {
      semTruthy(V, *this); // Traps KindError.
    }
  }
  VM_NEXT();

  VM_CASE(PushIntBinary) {
    int64_t K = Compiled.IntPool[static_cast<size_t>(In->B)];
    if (!Operands.empty() && Operands.back().isInt()) {
      int64_t R;
      if (intBinFast(static_cast<BinaryOp>(In->A), Operands.back().asInt(),
                     K, R)) {
        Operands.back() = Value::makeInt(R);
        VM_NEXT();
      }
    }
    Value Rhs = Value::makeInt(K);
    Value Lhs = pop();
    Operands.push_back(
        semBinaryOp(static_cast<BinaryOp>(In->A), Lhs, Rhs, *this));
  }
  VM_NEXT();

  VM_CASE(LocalBinary) {
    const Value &Rhs = Locals[static_cast<size_t>(In->B)];
    if (Rhs.isInt() && !Operands.empty() && Operands.back().isInt()) {
      int64_t R;
      if (intBinFast(static_cast<BinaryOp>(In->A), Operands.back().asInt(),
                     Rhs.asInt(), R)) {
        Operands.back() = Value::makeInt(R);
        VM_NEXT();
      }
    }
    if (Rhs.isUnit()) {
      trap(TrapKind::KindError,
           format("use of uninitialized variable '%s'",
                  Compiled.StrPool[static_cast<size_t>(In->D)].c_str()));
    } else {
      Value Lhs = pop();
      Operands.push_back(
          semBinaryOp(static_cast<BinaryOp>(In->A), Lhs, Rhs, *this));
    }
  }
  VM_NEXT();

#if !SBI_VM_COMPUTED_GOTO
    }
  }
#endif
}

#undef VM_CASE
#undef VM_NEXT
#ifdef VM_PROLOGUE
#undef VM_PROLOGUE
#endif

RunOutcome sbi::runCompiled(const CompiledProgram &Compiled,
                            const RunConfig &Config) {
  ScopedSpan Span("vm_execute", "vm");
  RunOutcome Outcome = VM(Compiled, Config).run();
  Span.arg("steps", Outcome.Steps);
  return Outcome;
}
