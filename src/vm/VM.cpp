//===- vm/VM.cpp - MicroC bytecode virtual machine -------------------------===//

#include "vm/VM.h"

#include "lang/Intrinsics.h"
#include "obs/Telemetry.h"
#include "obs/Tracer.h"
#include "runtime/Semantics.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace sbi;

namespace {

class VM final : public EvalSink {
public:
  VM(const CompiledProgram &Compiled, const RunConfig &Config)
      : Compiled(Compiled), Config(Config) {
    // Pre-shared string values: PushStr copies a handle instead of
    // allocating a fresh string per execution.
    StrValues.reserve(Compiled.StrPool.size());
    for (const std::string &S : Compiled.StrPool)
      StrValues.push_back(Value::makeStr(S));
    Operands.reserve(256);
  }

  RunOutcome run();

  // --- EvalSink -----------------------------------------------------------
  void trap(TrapKind Kind, std::string Message) override {
    if (Stopped)
      return;
    Stopped = true;
    Outcome.Trap = Kind;
    Outcome.TrapLine = CurLine;
    Outcome.TrapMessage = std::move(Message);
    captureStack();
  }

  void emitOutput(const std::string &Text) override {
    if (Outcome.Output.size() + Text.size() <= MaxOutputBytes)
      Outcome.Output += Text;
  }

  void exitRun(int Code) override {
    Outcome.ExitCode = Code;
    Stopped = true;
  }

  void recordBug(int BugId) override {
    Outcome.BugsTriggered.push_back(BugId);
  }

  const std::vector<std::string> &inputArgs() const override {
    return Config.Args;
  }

  size_t overrunPad() const override { return Config.OverrunPad; }

private:
  struct Frame {
    const Chunk *C = nullptr;
    std::vector<Value> Locals;
    size_t Pc = 0;
    /// Line of the last executed instruction (for outer stack frames).
    int CallLine = 0;
  };

  void captureStack();
  void execute(const Chunk &Entry);

  Value pop() {
    assert(!Operands.empty() && "operand stack underflow");
    Value V = std::move(Operands.back());
    Operands.pop_back();
    return V;
  }

  const CompiledProgram &Compiled;
  const RunConfig &Config;
  std::vector<Value> StrValues;
  RunOutcome Outcome;
  bool Stopped = false;
  std::vector<Value> Globals;
  std::vector<Value> Operands;
  std::vector<Frame> Frames;
  std::vector<Value> EmptyLocals;
  uint64_t Steps = 0;
  int CurLine = 0;
};

} // namespace

void VM::captureStack() {
  Outcome.StackTrace.clear();
  int InnerLine = CurLine;
  for (auto It = Frames.rbegin(); It != Frames.rend(); ++It) {
    Outcome.StackTrace.push_back(
        format("%s@%d", It->C->Name.c_str(), InnerLine));
    InnerLine = It->CallLine;
  }
}

RunOutcome VM::run() {
  Globals.resize(Compiled.NumGlobals);
  execute(Compiled.InitChunk);

  if (!Stopped) {
    assert(Compiled.MainChunk >= 0);
    execute(Compiled.Chunks[static_cast<size_t>(Compiled.MainChunk)]);
    if (!Stopped && !Operands.empty()) {
      Value Result = pop();
      if (Result.isInt())
        Outcome.ExitCode = static_cast<int>(Result.asInt());
    }
  }

  std::sort(Outcome.BugsTriggered.begin(), Outcome.BugsTriggered.end());
  Outcome.BugsTriggered.erase(std::unique(Outcome.BugsTriggered.begin(),
                                          Outcome.BugsTriggered.end()),
                              Outcome.BugsTriggered.end());
  Outcome.Steps = Steps;
  // Telemetry is a once-per-run flush of the locally maintained dispatch
  // count; the dispatch loop itself carries no telemetry.
#if !defined(SBI_TELEMETRY_DISABLED)
  if (Telemetry::enabled()) {
    static Counter &RunsCounter =
        Telemetry::metrics().registerCounter("vm.runs");
    static Counter &DispatchCounter =
        Telemetry::metrics().registerCounter("vm.dispatches");
    RunsCounter.add(1);
    DispatchCounter.add(Steps);
  }
#endif
  return std::move(Outcome);
}

void VM::execute(const Chunk &Entry) {
  Operands.clear();
  Frames.clear();
  Frame Top;
  Top.C = &Entry;
  Top.Locals.resize(static_cast<size_t>(Entry.NumLocals));
  Top.CallLine = Entry.Line;
  Frames.push_back(std::move(Top));

  // The dispatch loop is split in two: the outer loop re-binds the frame
  // after calls and returns; the inner loop keeps the hot state (frame,
  // code, pc) in registers between frame changes.
  while (!Stopped && !Frames.empty()) {
    Frame &F = Frames.back();
    const Instr *Code = F.C->Code.data();
    std::vector<Value> &Locals = F.Locals;
    size_t Pc = F.Pc;
    bool FrameChanged = false;
    while (!Stopped && !FrameChanged) {
    assert(Pc < F.C->Code.size() && "fell off the end of a chunk");
    const Instr &In = Code[Pc++];
    CurLine = In.Line;
    if (++Steps >= Config.StepLimit) {
      trap(TrapKind::StepLimit, "step limit exceeded");
      return;
    }

    switch (In.Op) {
    case Opcode::PushInt:
      Operands.push_back(
          Value::makeInt(Compiled.IntPool[static_cast<size_t>(In.A)]));
      break;
    case Opcode::PushStr:
      Operands.push_back(StrValues[static_cast<size_t>(In.A)]);
      break;
    case Opcode::PushNull:
      Operands.push_back(Value::makeNull());
      break;
    case Opcode::PushUnit:
      Operands.push_back(Value());
      break;
    case Opcode::Pop:
      pop();
      break;
    case Opcode::Dup:
      Operands.push_back(Operands.back());
      break;

    case Opcode::LoadLocal:
    case Opcode::LoadGlobal: {
      std::vector<Value> &Storage =
          In.Op == Opcode::LoadGlobal ? Globals : Locals;
      const Value &V = Storage[static_cast<size_t>(In.A)];
      if (V.isUnit()) {
        trap(TrapKind::KindError,
             format("use of uninitialized variable '%s'",
                    Compiled.StrPool[static_cast<size_t>(In.B)].c_str()));
        break;
      }
      Operands.push_back(V);
      break;
    }

    case Opcode::StoreLocal:
    case Opcode::StoreGlobal: {
      Value V = pop();
      if (!semCheckKind(static_cast<VarKind>(In.C), V,
                        Compiled.StrPool[static_cast<size_t>(In.B)], *this))
        break;
      std::vector<Value> &Storage =
          In.Op == Opcode::StoreGlobal ? Globals : Locals;
      Storage[static_cast<size_t>(In.A)] = std::move(V);
      break;
    }

    case Opcode::Binary: {
      Value Rhs = pop();
      Value Lhs = pop();
      Operands.push_back(
          semBinaryOp(static_cast<BinaryOp>(In.A), Lhs, Rhs, *this));
      break;
    }

    case Opcode::Unary: {
      Value V = pop();
      Operands.push_back(semUnaryOp(static_cast<UnaryOp>(In.A), V, *this));
      break;
    }

    case Opcode::ToBool: {
      Value V = pop();
      bool B = semTruthy(V, *this);
      Operands.push_back(Value::makeInt(B ? 1 : 0));
      break;
    }

    case Opcode::Jump:
      Pc = static_cast<size_t>(In.A);
      break;

    case Opcode::ObsJumpIfFalse:
    case Opcode::ObsJumpIfTrue: {
      Value V = pop();
      bool Taken = semTruthy(V, *this);
      if (Stopped)
        break;
      if (Config.Observer)
        Config.Observer->onBranch(In.B, Taken);
      bool Jump = In.Op == Opcode::ObsJumpIfFalse ? !Taken : Taken;
      if (Jump)
        Pc = static_cast<size_t>(In.A);
      break;
    }

    case Opcode::JumpIfFalse:
    case Opcode::JumpIfTrue: {
      Value V = pop();
      bool Taken = semTruthy(V, *this);
      if (Stopped)
        break;
      bool Jump = In.Op == Opcode::JumpIfFalse ? !Taken : Taken;
      if (Jump)
        Pc = static_cast<size_t>(In.A);
      break;
    }

    case Opcode::IndexLoad: {
      Value Subscript = pop();
      Value Base = pop();
      Value *Element = semResolveElement(Base, Subscript, *this);
      Operands.push_back(Element ? *Element : Value());
      break;
    }

    case Opcode::IndexStore: {
      Value V = pop();
      Value Subscript = pop();
      Value Base = pop();
      if (Value *Element = semResolveElement(Base, Subscript, *this))
        *Element = std::move(V);
      break;
    }

    case Opcode::FieldLoad: {
      Value Base = pop();
      Operands.push_back(semLoadField(
          Base, Compiled.StrPool[static_cast<size_t>(In.A)], *this));
      break;
    }

    case Opcode::FieldStore: {
      Value V = pop();
      Value Base = pop();
      semStoreField(Base, Compiled.StrPool[static_cast<size_t>(In.A)],
                    std::move(V), *this);
      break;
    }

    case Opcode::NewRec: {
      const RecordDecl *Decl = Compiled.Records[static_cast<size_t>(In.A)];
      auto Rec = std::make_shared<RecordObj>();
      Rec->Decl = Decl;
      Rec->Fields.assign(Decl->Fields.size(), Value::makeNull());
      Operands.push_back(Value::makeRec(std::move(Rec)));
      break;
    }

    case Opcode::Call: {
      F.Pc = Pc; // The frame reference dies when the callee is pushed.
      const Chunk &Callee = Compiled.Chunks[static_cast<size_t>(In.A)];
      if (static_cast<int>(Frames.size()) >= Config.MaxCallDepth) {
        trap(TrapKind::StackOverflow,
             format("call depth exceeded calling '%s'",
                    Callee.Name.c_str()));
        break;
      }
      Frame NewFrame;
      NewFrame.C = &Callee;
      NewFrame.Locals.resize(static_cast<size_t>(Callee.NumLocals));
      NewFrame.CallLine = In.Line;
      size_t NumArgs = static_cast<size_t>(In.B);
      for (size_t I = NumArgs; I > 0; --I)
        NewFrame.Locals[I - 1] = pop();
      Frames.push_back(std::move(NewFrame));
      FrameChanged = true;
      break;
    }

    case Opcode::CallIntrinsic: {
      size_t NumArgs = static_cast<size_t>(In.B);
      std::vector<Value> Args(NumArgs);
      for (size_t I = NumArgs; I > 0; --I)
        Args[I - 1] = pop();
      Operands.push_back(semCallIntrinsic(In.A, intrinsicInfo(In.A).Name,
                                          std::move(Args), *this));
      break;
    }

    case Opcode::ObserveCall:
      if (Config.Observer && Operands.back().isInt())
        Config.Observer->onScalarReturn(In.A, Operands.back().asInt());
      break;

    case Opcode::ObserveAssign: {
      Value V = pop();
      if (Config.Observer && V.isInt())
        Config.Observer->onScalarAssign(In.A, V.asInt(),
                                        FrameView(Globals, Locals));
      break;
    }

    case Opcode::Return: {
      Value Result = pop();
      Frames.pop_back();
      Operands.push_back(std::move(Result));
      FrameChanged = true;
      break;
    }

    case Opcode::Halt:
      Frames.clear();
      FrameChanged = true;
      break;
    }
    }
    if (!Frames.empty() && &Frames.back() == &F)
      F.Pc = Pc;
  }
}

RunOutcome sbi::runCompiled(const CompiledProgram &Compiled,
                            const RunConfig &Config) {
  ScopedSpan Span("vm_execute", "vm");
  RunOutcome Outcome = VM(Compiled, Config).run();
  Span.arg("steps", Outcome.Steps);
  return Outcome;
}
