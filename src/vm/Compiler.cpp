//===- vm/Compiler.cpp - MicroC AST -> bytecode compiler ------------------===//

#include "vm/Compiler.h"

#include "lang/Intrinsics.h"
#include "obs/Tracer.h"
#include "support/StringUtils.h"

#include <unordered_map>

using namespace sbi;

const char *sbi::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::PushInt:
    return "push.int";
  case Opcode::PushStr:
    return "push.str";
  case Opcode::PushNull:
    return "push.null";
  case Opcode::PushUnit:
    return "push.unit";
  case Opcode::Pop:
    return "pop";
  case Opcode::Dup:
    return "dup";
  case Opcode::LoadLocal:
    return "load.local";
  case Opcode::LoadGlobal:
    return "load.global";
  case Opcode::StoreLocal:
    return "store.local";
  case Opcode::StoreGlobal:
    return "store.global";
  case Opcode::Binary:
    return "binary";
  case Opcode::Unary:
    return "unary";
  case Opcode::ToBool:
    return "tobool";
  case Opcode::Jump:
    return "jump";
  case Opcode::ObsJumpIfFalse:
    return "obs.jfalse";
  case Opcode::ObsJumpIfTrue:
    return "obs.jtrue";
  case Opcode::JumpIfFalse:
    return "jfalse";
  case Opcode::JumpIfTrue:
    return "jtrue";
  case Opcode::IndexLoad:
    return "index.load";
  case Opcode::IndexStore:
    return "index.store";
  case Opcode::FieldLoad:
    return "field.load";
  case Opcode::FieldStore:
    return "field.store";
  case Opcode::NewRec:
    return "new.rec";
  case Opcode::Call:
    return "call";
  case Opcode::CallIntrinsic:
    return "call.intrinsic";
  case Opcode::ObserveCall:
    return "observe.call";
  case Opcode::ObserveAssign:
    return "observe.assign";
  case Opcode::Return:
    return "return";
  case Opcode::Halt:
    return "halt";
  case Opcode::LocalObsJumpIfFalse:
    return "local.obs.jfalse";
  case Opcode::LocalObsJumpIfTrue:
    return "local.obs.jtrue";
  case Opcode::LocalJumpIfFalse:
    return "local.jfalse";
  case Opcode::LocalJumpIfTrue:
    return "local.jtrue";
  case Opcode::PushIntBinary:
    return "push.int.binary";
  case Opcode::LocalBinary:
    return "local.binary";
  }
  return "?";
}

const char *sbi::vmDispatchKind() {
#if SBI_VM_COMPUTED_GOTO
  return "computed-goto";
#else
  return "switch";
#endif
}

std::string CompiledProgram::disassemble() const {
  std::string Out;
  auto dumpChunk = [&](const Chunk &C) {
    Out += format("chunk %s (locals=%d, params=%d):\n", C.Name.c_str(),
                  C.NumLocals, C.NumParams);
    for (size_t I = 0; I < C.Code.size(); ++I) {
      const Instr &In = C.Code[I];
      Out += format("  %4zu  %-16s %d %d %d %d   ; line %d\n", I,
                    opcodeName(In.Op), In.A, In.B, In.C, In.D, In.Line);
    }
  };
  dumpChunk(InitChunk);
  for (const Chunk &C : Chunks)
    dumpChunk(C);
  return Out;
}

namespace {

bool isJumpOp(Opcode Op) {
  switch (Op) {
  case Opcode::Jump:
  case Opcode::ObsJumpIfFalse:
  case Opcode::ObsJumpIfTrue:
  case Opcode::JumpIfFalse:
  case Opcode::JumpIfTrue:
  case Opcode::LocalObsJumpIfFalse:
  case Opcode::LocalObsJumpIfTrue:
  case Opcode::LocalJumpIfFalse:
  case Opcode::LocalJumpIfTrue:
    return true;
  default:
    return false;
  }
}

/// The superinstruction peephole. Fuses the instrumentation-heavy adjacent
/// pairs (trace summaries show observed branches and compare-against-
/// constant dominating hot loops) into single opcodes:
///
///   LoadLocal + {Obs,}Jump{IfFalse,IfTrue}  -> Local{Obs,}Jump...
///   PushInt   + Binary                      -> PushIntBinary
///   LoadLocal + Binary                      -> LocalBinary
///
/// A pair fuses only when (a) the second instruction is not a jump target —
/// fusing across an incoming edge would change what that edge executes —
/// and (b) both halves carry the same source line, so trap attribution and
/// stack-trace lines are identical whether or not fusion happened.
void fuseChunk(Chunk &C) {
  size_t N = C.Code.size();
  std::vector<uint8_t> IsTarget(N + 1, 0);
  for (const Instr &In : C.Code)
    if (isJumpOp(In.Op))
      IsTarget[static_cast<size_t>(In.A)] = 1;

  std::vector<Instr> Fused;
  Fused.reserve(N);
  // Old pc -> new pc of the (possibly fused) instruction it begins.
  std::vector<int32_t> NewIndex(N + 1, 0);

  for (size_t I = 0; I < N; ++I) {
    NewIndex[I] = static_cast<int32_t>(Fused.size());
    const Instr &In = C.Code[I];
    if (I + 1 < N && !IsTarget[I + 1] && C.Code[I + 1].Line == In.Line) {
      const Instr &Next = C.Code[I + 1];
      Instr Pair{};
      Pair.Line = In.Line;
      bool DidFuse = true;
      if (In.Op == Opcode::LoadLocal &&
          (Next.Op == Opcode::ObsJumpIfFalse ||
           Next.Op == Opcode::ObsJumpIfTrue ||
           Next.Op == Opcode::JumpIfFalse ||
           Next.Op == Opcode::JumpIfTrue)) {
        switch (Next.Op) {
        case Opcode::ObsJumpIfFalse:
          Pair.Op = Opcode::LocalObsJumpIfFalse;
          break;
        case Opcode::ObsJumpIfTrue:
          Pair.Op = Opcode::LocalObsJumpIfTrue;
          break;
        case Opcode::JumpIfFalse:
          Pair.Op = Opcode::LocalJumpIfFalse;
          break;
        default:
          Pair.Op = Opcode::LocalJumpIfTrue;
          break;
        }
        Pair.A = Next.A;
        Pair.B = Next.B;
        Pair.C = In.A; // Slot.
        Pair.D = In.B; // Name.
      } else if (In.Op == Opcode::PushInt && Next.Op == Opcode::Binary) {
        Pair.Op = Opcode::PushIntBinary;
        Pair.A = Next.A; // BinaryOp.
        Pair.B = In.A;   // IntPool index.
      } else if (In.Op == Opcode::LoadLocal && Next.Op == Opcode::Binary) {
        Pair.Op = Opcode::LocalBinary;
        Pair.A = Next.A; // BinaryOp.
        Pair.B = In.A;   // Slot.
        Pair.D = In.B;   // Name.
      } else {
        DidFuse = false;
      }
      if (DidFuse) {
        NewIndex[I + 1] = static_cast<int32_t>(Fused.size());
        Fused.push_back(Pair);
        ++I;
        continue;
      }
    }
    Fused.push_back(In);
  }
  NewIndex[N] = static_cast<int32_t>(Fused.size());

  for (Instr &In : Fused)
    if (isJumpOp(In.Op))
      In.A = NewIndex[static_cast<size_t>(In.A)];
  C.Code = std::move(Fused);
}

} // namespace

void CompiledProgram::flatten() {
  Flat.clear();
  FlatStart.assign(Chunks.size(), 0);

  auto append = [&](const Chunk &C) {
    auto Base = static_cast<int32_t>(Flat.size());
    for (const Instr &In : C.Code) {
      Flat.push_back(In);
      if (isJumpOp(In.Op))
        Flat.back().A += Base;
    }
    return static_cast<uint32_t>(Base);
  };

  InitStart = append(InitChunk);
  for (size_t I = 0; I < Chunks.size(); ++I)
    FlatStart[I] = append(Chunks[I]);

  StrValues.clear();
  StrValues.reserve(StrPool.size());
  for (const std::string &S : StrPool)
    StrValues.push_back(Value::makeStr(S));
}

namespace {

class Compiler {
public:
  Compiler(const Program &Prog, const CompileOptions &Opts)
      : Prog(Prog), Opts(Opts) {}

  CompiledProgram compile();

private:
  // --- Pools -------------------------------------------------------------
  int32_t intConst(int64_t V) {
    auto [It, Inserted] = IntIndex.try_emplace(V, Out.IntPool.size());
    if (Inserted)
      Out.IntPool.push_back(V);
    return static_cast<int32_t>(It->second);
  }

  int32_t strConst(const std::string &S) {
    auto [It, Inserted] = StrIndex.try_emplace(S, Out.StrPool.size());
    if (Inserted)
      Out.StrPool.push_back(S);
    return static_cast<int32_t>(It->second);
  }

  int32_t recordIndex(const RecordDecl *Decl) {
    for (size_t I = 0; I < Out.Records.size(); ++I)
      if (Out.Records[I] == Decl)
        return static_cast<int32_t>(I);
    Out.Records.push_back(Decl);
    return static_cast<int32_t>(Out.Records.size() - 1);
  }

  // --- Emission ------------------------------------------------------------
  size_t emit(Opcode Op, int32_t A = 0, int32_t B = 0, int32_t C = 0) {
    Current->Code.push_back({Op, A, B, C, /*D=*/0, Line});
    return Current->Code.size() - 1;
  }

  void patchJump(size_t At) {
    Current->Code[At].A = static_cast<int32_t>(Current->Code.size());
  }

  /// Whether \p NodeId's instrumentation survives the observed-node mask.
  /// Ids outside the mask stay observed (conservative for synthetic nodes).
  bool observes(int NodeId) const {
    if (!Opts.ObservedNodes)
      return true;
    auto Id = static_cast<size_t>(static_cast<uint32_t>(NodeId));
    return Id >= Opts.ObservedNodes->size() || (*Opts.ObservedNodes)[Id];
  }

  // --- Compilation ---------------------------------------------------------
  void compileFunction(const FuncDecl &Func, Chunk &C);
  void compileStmt(const Stmt &S);
  void compileExpr(const Expr &E);
  void compileStore(VarSlot Slot, VarKind Kind, const std::string &Name);
  void compileLoad(const VarRefExpr &Var);

  const Program &Prog;
  const CompileOptions &Opts;
  CompiledProgram Out;
  Chunk *Current = nullptr;
  int32_t Line = 0;
  std::unordered_map<int64_t, size_t> IntIndex;
  std::unordered_map<std::string, size_t> StrIndex;
  std::unordered_map<const FuncDecl *, int32_t> FuncIndex;
  /// Jump-patch targets for the innermost loop.
  std::vector<std::vector<size_t>> BreakPatches;
  std::vector<int32_t> ContinueTargets;
  std::vector<std::vector<size_t>> ContinuePatches;
};

} // namespace

CompiledProgram Compiler::compile() {
  Out.NumGlobals = static_cast<uint32_t>(Prog.Globals.size());

  for (size_t I = 0; I < Prog.Functions.size(); ++I)
    FuncIndex[Prog.Functions[I].get()] =
        static_cast<int32_t>(I);

  // The global-initializer chunk.
  Out.InitChunk.Name = "<globals>";
  Current = &Out.InitChunk;
  for (const auto &Global : Prog.Globals) {
    Line = Global->Line;
    if (Global->Init)
      compileExpr(*Global->Init);
    else
      switch (Global->Kind) {
      case VarKind::Int:
        emit(Opcode::PushInt, intConst(0));
        break;
      case VarKind::Str:
        emit(Opcode::PushStr, strConst(""));
        break;
      case VarKind::Arr:
      case VarKind::Rec:
        emit(Opcode::PushNull);
        break;
      }
    Line = Global->Line;
    emit(Opcode::StoreGlobal, Global->Slot, strConst(Global->Name),
         static_cast<int32_t>(Global->Kind));
  }
  emit(Opcode::Halt);

  Out.Chunks.resize(Prog.Functions.size());
  for (size_t I = 0; I < Prog.Functions.size(); ++I)
    compileFunction(*Prog.Functions[I], Out.Chunks[I]);

  const FuncDecl *Main = Prog.findFunction("main");
  assert(Main && "Sema guarantees main exists");
  Out.MainChunk = FuncIndex[Main];

  fuseChunk(Out.InitChunk);
  for (Chunk &C : Out.Chunks)
    fuseChunk(C);
  Out.flatten();
  return std::move(Out);
}

void Compiler::compileFunction(const FuncDecl &Func, Chunk &C) {
  C.Name = Func.Name;
  C.NumLocals = Func.NumLocals;
  C.NumParams = static_cast<int>(Func.Params.size());
  C.Line = Func.Line;
  Current = &C;
  Line = Func.Line;
  compileStmt(*Func.Body);
  // Implicit unit return for functions that fall off the end.
  emit(Opcode::PushUnit);
  emit(Opcode::Return);
}

void Compiler::compileStore(VarSlot Slot, VarKind Kind,
                            const std::string &Name) {
  emit(Slot.IsGlobal ? Opcode::StoreGlobal : Opcode::StoreLocal, Slot.Index,
       strConst(Name), static_cast<int32_t>(Kind));
}

void Compiler::compileLoad(const VarRefExpr &Var) {
  emit(Var.Slot.IsGlobal ? Opcode::LoadGlobal : Opcode::LoadLocal,
       Var.Slot.Index, strConst(Var.Name));
}

void Compiler::compileStmt(const Stmt &S) {
  Line = S.Line;
  switch (S.Kind) {
  case StmtKind::Expr:
    compileExpr(*static_cast<const ExprStmt &>(S).E);
    emit(Opcode::Pop);
    return;

  case StmtKind::Assign: {
    const auto &Assign = static_cast<const AssignStmt &>(S);
    switch (Assign.Target->Kind) {
    case ExprKind::VarRef: {
      const auto &Var = static_cast<const VarRefExpr &>(*Assign.Target);
      compileExpr(*Assign.Value);
      Line = Assign.Line;
      bool Observed = Assign.TargetIsIntVar && observes(Assign.Id);
      if (Observed)
        emit(Opcode::Dup);
      compileStore(Var.Slot, Var.DeclaredKind, Var.Name);
      if (Observed)
        emit(Opcode::ObserveAssign, Assign.Id);
      return;
    }
    case ExprKind::Index: {
      const auto &Index = static_cast<const IndexExpr &>(*Assign.Target);
      compileExpr(*Index.Base);
      compileExpr(*Index.Subscript);
      compileExpr(*Assign.Value);
      Line = Index.Line;
      emit(Opcode::IndexStore);
      return;
    }
    case ExprKind::Field: {
      const auto &Field = static_cast<const FieldExpr &>(*Assign.Target);
      compileExpr(*Field.Base);
      compileExpr(*Assign.Value);
      Line = Field.Line;
      emit(Opcode::FieldStore, strConst(Field.FieldName));
      return;
    }
    default:
      assert(false && "Sema rejects other assignment targets");
      return;
    }
  }

  case StmtKind::VarDecl: {
    const auto &Decl = static_cast<const VarDeclStmt &>(S);
    if (Decl.Init)
      compileExpr(*Decl.Init);
    else
      switch (Decl.DeclKind) {
      case VarKind::Int:
        emit(Opcode::PushInt, intConst(0));
        break;
      case VarKind::Str:
        emit(Opcode::PushStr, strConst(""));
        break;
      case VarKind::Arr:
      case VarKind::Rec:
        emit(Opcode::PushNull);
        break;
      }
    Line = Decl.Line;
    bool Observed = Decl.DeclKind == VarKind::Int && Decl.Init != nullptr &&
                    observes(Decl.Id);
    if (Observed)
      emit(Opcode::Dup);
    compileStore(Decl.Slot, Decl.DeclKind, Decl.Name);
    if (Observed)
      emit(Opcode::ObserveAssign, Decl.Id);
    return;
  }

  case StmtKind::Block:
    for (const StmtPtr &Child : static_cast<const BlockStmt &>(S).Body)
      compileStmt(*Child);
    return;

  case StmtKind::If: {
    const auto &If = static_cast<const IfStmt &>(S);
    compileExpr(*If.Cond);
    Line = If.Cond->Line;
    size_t ToElse = emit(observes(If.Id) ? Opcode::ObsJumpIfFalse
                                         : Opcode::JumpIfFalse,
                         0, If.Id);
    compileStmt(*If.Then);
    if (If.Else) {
      Line = If.Line;
      size_t ToEnd = emit(Opcode::Jump);
      patchJump(ToElse);
      compileStmt(*If.Else);
      patchJump(ToEnd);
    } else {
      patchJump(ToElse);
    }
    return;
  }

  case StmtKind::While: {
    const auto &While = static_cast<const WhileStmt &>(S);
    int32_t Top = static_cast<int32_t>(Current->Code.size());
    compileExpr(*While.Cond);
    Line = While.Cond->Line;
    size_t ToEnd = emit(observes(While.Id) ? Opcode::ObsJumpIfFalse
                                           : Opcode::JumpIfFalse,
                        0, While.Id);
    BreakPatches.emplace_back();
    ContinueTargets.push_back(Top);
    ContinuePatches.emplace_back();
    compileStmt(*While.Body);
    Line = While.Line;
    emit(Opcode::Jump, Top);
    patchJump(ToEnd);
    for (size_t At : BreakPatches.back())
      patchJump(At);
    for (size_t At : ContinuePatches.back())
      Current->Code[At].A = Top;
    BreakPatches.pop_back();
    ContinueTargets.pop_back();
    ContinuePatches.pop_back();
    return;
  }

  case StmtKind::For: {
    const auto &For = static_cast<const ForStmt &>(S);
    if (For.Init)
      compileStmt(*For.Init);
    int32_t CondTop = static_cast<int32_t>(Current->Code.size());
    Line = For.Line;
    size_t ToEnd;
    Opcode CondJump =
        observes(For.Id) ? Opcode::ObsJumpIfFalse : Opcode::JumpIfFalse;
    if (For.Cond) {
      compileExpr(*For.Cond);
      Line = For.Cond->Line;
      ToEnd = emit(CondJump, 0, For.Id);
    } else {
      emit(Opcode::PushInt, intConst(1));
      ToEnd = emit(CondJump, 0, For.Id);
    }
    BreakPatches.emplace_back();
    ContinueTargets.push_back(-1); // Patched after the step is placed.
    ContinuePatches.emplace_back();
    compileStmt(*For.Body);
    int32_t StepTop = static_cast<int32_t>(Current->Code.size());
    if (For.Step)
      compileStmt(*For.Step);
    Line = For.Line;
    emit(Opcode::Jump, CondTop);
    patchJump(ToEnd);
    for (size_t At : BreakPatches.back())
      patchJump(At);
    for (size_t At : ContinuePatches.back())
      Current->Code[At].A = StepTop;
    BreakPatches.pop_back();
    ContinueTargets.pop_back();
    ContinuePatches.pop_back();
    return;
  }

  case StmtKind::Return: {
    const auto &Return = static_cast<const ReturnStmt &>(S);
    if (Return.Value)
      compileExpr(*Return.Value);
    else
      emit(Opcode::PushUnit);
    Line = S.Line;
    emit(Opcode::Return);
    return;
  }

  case StmtKind::Break:
    assert(!BreakPatches.empty() && "Sema guarantees break inside a loop");
    BreakPatches.back().push_back(emit(Opcode::Jump));
    return;

  case StmtKind::Continue:
    assert(!ContinuePatches.empty() &&
           "Sema guarantees continue inside a loop");
    ContinuePatches.back().push_back(emit(Opcode::Jump));
    return;
  }
}

void Compiler::compileExpr(const Expr &E) {
  Line = E.Line;
  switch (E.Kind) {
  case ExprKind::IntLit:
    emit(Opcode::PushInt,
         intConst(static_cast<const IntLitExpr &>(E).Value));
    return;

  case ExprKind::StrLit:
    emit(Opcode::PushStr,
         strConst(static_cast<const StrLitExpr &>(E).Value));
    return;

  case ExprKind::NullLit:
    emit(Opcode::PushNull);
    return;

  case ExprKind::VarRef:
    compileLoad(static_cast<const VarRefExpr &>(E));
    return;

  case ExprKind::Unary: {
    const auto &Unary = static_cast<const UnaryExpr &>(E);
    compileExpr(*Unary.Operand);
    Line = E.Line;
    emit(Opcode::Unary, static_cast<int32_t>(Unary.Op));
    return;
  }

  case ExprKind::Binary: {
    const auto &Bin = static_cast<const BinaryExpr &>(E);
    if (Bin.Op == BinaryOp::And) {
      compileExpr(*Bin.Lhs);
      Line = Bin.Lhs->Line;
      size_t ToFalse = emit(observes(Bin.Id) ? Opcode::ObsJumpIfFalse
                                             : Opcode::JumpIfFalse,
                            0, Bin.Id);
      compileExpr(*Bin.Rhs);
      Line = Bin.Rhs->Line;
      emit(Opcode::ToBool);
      size_t ToEnd = emit(Opcode::Jump);
      patchJump(ToFalse);
      emit(Opcode::PushInt, intConst(0));
      patchJump(ToEnd);
      return;
    }
    if (Bin.Op == BinaryOp::Or) {
      compileExpr(*Bin.Lhs);
      Line = Bin.Lhs->Line;
      size_t ToTrue = emit(observes(Bin.Id) ? Opcode::ObsJumpIfTrue
                                            : Opcode::JumpIfTrue,
                           0, Bin.Id);
      compileExpr(*Bin.Rhs);
      Line = Bin.Rhs->Line;
      emit(Opcode::ToBool);
      size_t ToEnd = emit(Opcode::Jump);
      patchJump(ToTrue);
      emit(Opcode::PushInt, intConst(1));
      patchJump(ToEnd);
      return;
    }
    compileExpr(*Bin.Lhs);
    compileExpr(*Bin.Rhs);
    Line = Bin.Line;
    emit(Opcode::Binary, static_cast<int32_t>(Bin.Op));
    return;
  }

  case ExprKind::Index: {
    const auto &Index = static_cast<const IndexExpr &>(E);
    compileExpr(*Index.Base);
    compileExpr(*Index.Subscript);
    Line = Index.Line;
    emit(Opcode::IndexLoad);
    return;
  }

  case ExprKind::Field: {
    const auto &Field = static_cast<const FieldExpr &>(E);
    compileExpr(*Field.Base);
    Line = Field.Line;
    emit(Opcode::FieldLoad, strConst(Field.FieldName));
    return;
  }

  case ExprKind::Call: {
    const auto &Call = static_cast<const CallExpr &>(E);
    for (const ExprPtr &Arg : Call.Args)
      compileExpr(*Arg);
    Line = Call.Line;
    if (Call.Target)
      emit(Opcode::Call, FuncIndex.at(Call.Target),
           static_cast<int32_t>(Call.Args.size()));
    else
      emit(Opcode::CallIntrinsic, Call.IntrinsicId,
           static_cast<int32_t>(Call.Args.size()));
    if (observes(Call.Id))
      emit(Opcode::ObserveCall, Call.Id);
    return;
  }

  case ExprKind::New:
    emit(Opcode::NewRec,
         recordIndex(static_cast<const NewExpr &>(E).Record));
    return;
  }
}

CompiledProgram sbi::compileProgram(const Program &Prog) {
  return compileProgram(Prog, CompileOptions());
}

CompiledProgram sbi::compileProgram(const Program &Prog,
                                    const CompileOptions &Opts) {
  ScopedSpan Span("vm_compile", "vm");
  return Compiler(Prog, Opts).compile();
}
