//===- vm/Compiler.h - MicroC AST -> bytecode compiler --------------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles an analyzed MicroC Program into the stack bytecode of
/// vm/Bytecode.h. The compiler is total on Sema-checked programs — there
/// are no compile errors at this stage — and preserves evaluation order
/// and observer-event order exactly as the tree-walking interpreter
/// produces them.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_VM_COMPILER_H
#define SBI_VM_COMPILER_H

#include "lang/AST.h"
#include "vm/Bytecode.h"

#include <cstdint>
#include <vector>

namespace sbi {

/// Options controlling instrumentation emission.
struct CompileOptions {
  /// When non-null, a 0/1 mask indexed by AST node id: nodes with a 0 entry
  /// compile without instrumentation opcodes — branches use plain
  /// conditional jumps, calls skip ObserveCall, and assignments skip the
  /// Dup + ObserveAssign pair. Null (the default) observes every node.
  /// Evaluation order, traps, and output are unaffected either way.
  const std::vector<uint8_t> *ObservedNodes = nullptr;
};

/// Compiles \p Prog (which must have passed Sema). The result references
/// \p Prog's record declarations and must not outlive it.
CompiledProgram compileProgram(const Program &Prog);
CompiledProgram compileProgram(const Program &Prog,
                               const CompileOptions &Opts);

} // namespace sbi

#endif // SBI_VM_COMPILER_H
