//===- vm/VM.h - MicroC bytecode virtual machine ---------------------------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes compiled MicroC bytecode with the same RunConfig/RunOutcome
/// contract as runtime/Interp.h and identical observable behaviour
/// (enforced by the engine differential tests). Use this engine for large
/// campaigns; the tree-walker remains the reference semantics.
///
/// The step budget counts bytecode instructions rather than AST node
/// visits, so RunOutcome::Steps is not comparable across engines (both are
/// only runaway guards).
///
//===----------------------------------------------------------------------===//

#ifndef SBI_VM_VM_H
#define SBI_VM_VM_H

#include "runtime/Interp.h"
#include "vm/Bytecode.h"

namespace sbi {

/// Runs \p Compiled under \p Config.
RunOutcome runCompiled(const CompiledProgram &Compiled,
                       const RunConfig &Config);

} // namespace sbi

#endif // SBI_VM_VM_H
