//===- instrument/Collector.h - Sampling and feedback-report collection ---===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic half of the instrumentation system:
///
///   - SamplingPlan: a per-site sampling rate. Uniform plans model the
///     paper's fixed 1/100 Bernoulli sampling; adaptive plans implement the
///     nonuniform strategy of Section 4 (rates inversely proportional to
///     execution frequency, targeting ~100 expected samples per site per
///     run, clamped to a 1/100 minimum).
///
///   - ReportCollector: an ExecutionObserver that makes the per-site
///     Bernoulli sampling decision (geometric skip-count fast path) and
///     accumulates one run's observation counts, producing a sparse
///     RawReport. "P observed" means P's site was reached AND sampled;
///     "P observed true" additionally requires the predicate to hold.
///
/// Sampling draws come from an independent per-site RNG stream seeded from
/// (run seed, site id). This makes each site's coin-flip sequence a function
/// of the run alone — disabling any subset of sites (static pruning) leaves
/// every retained site's draws bit-identical, which is what makes pruned and
/// unpruned campaigns directly comparable.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_INSTRUMENT_COLLECTOR_H
#define SBI_INSTRUMENT_COLLECTOR_H

#include "instrument/Sites.h"
#include "runtime/Observer.h"
#include "support/Random.h"

#include <array>
#include <string>
#include <vector>

namespace sbi {

/// Per-site sampling rates in [0, 1].
class SamplingPlan {
public:
  /// Every site sampled on every reach (complete monitoring).
  static SamplingPlan full(uint32_t NumSites);

  /// Every site sampled independently at \p Rate (e.g. 1/100).
  static SamplingPlan uniform(uint32_t NumSites, double Rate);

  /// The nonuniform plan of Section 4: given each site's mean reach count
  /// per run (measured on training runs), choose rates so each site yields
  /// about \p TargetSamples samples per run. Sites reached fewer than
  /// \p TargetSamples times get rate 1.0; rates never drop below
  /// \p MinRate.
  static SamplingPlan adaptive(const std::vector<double> &MeanReachPerRun,
                               double TargetSamples = 100.0,
                               double MinRate = 0.01);

  double rate(uint32_t Site) const { return Rates[Site]; }
  uint32_t numSites() const { return static_cast<uint32_t>(Rates.size()); }
  const std::string &name() const { return Name; }

private:
  std::vector<double> Rates;
  std::string Name;
};

/// One run's sparse observation counts.
struct RawReport {
  /// (site id, times sampled) sorted by site id.
  std::vector<std::pair<uint32_t, uint32_t>> SiteObservations;
  /// (predicate id, times observed true) sorted by predicate id.
  std::vector<std::pair<uint32_t, uint32_t>> TruePredicates;
};

/// Observes one run at a time; reusable across runs (beginRun resets).
class ReportCollector : public ExecutionObserver {
public:
  /// \p EnabledSites, when non-null, is a per-site 0/1 mask (indexed by site
  /// id); sites with a 0 entry are never sampled, never observed, and cost
  /// zero per-reach work — their node dispatch entries are simply absent.
  /// The mask is copied into the node index, so the pointer need not outlive
  /// the constructor call.
  ReportCollector(const SiteTable &Sites, SamplingPlan Plan,
                  const std::vector<uint8_t> *EnabledSites = nullptr);

  /// Starts a fresh run whose sampling coin flips derive from \p RunSeed.
  void beginRun(uint64_t RunSeed);

  /// Returns the finished run's report and resets internal scratch.
  RawReport takeReport();

  void onBranch(int NodeId, bool Taken) override;
  void onScalarReturn(int NodeId, int64_t Result) override;
  void onScalarAssign(int NodeId, int64_t NewValue,
                      const FrameView &Frame) override;

  /// The countdown-hoisting handle (see SamplingAccel in Observer.h). Null
  /// while reach stats are enabled: stat accumulation must see every reach,
  /// so engines have to take the always-call path. Engines must re-query
  /// after enableReachStats(); the campaign queries per run, which is
  /// always after stats are configured.
  const SamplingAccel *samplingAccel() const override {
    return TrackReaches ? nullptr : &Accel;
  }

  const SamplingPlan &plan() const { return Plan; }

  /// Per-scheme reach/sample totals, accumulated across all runs since
  /// enableReachStats(): how often sites of each scheme were reached vs.
  /// actually sampled. Samples/Reaches is the *realized* sampling rate the
  /// telemetry layer compares against the plan. Off by default — counting
  /// adds one branch plus two increments per site reach, so the campaign
  /// only enables it when telemetry is on.
  struct ReachStats {
    std::array<uint64_t, 3> Reaches{}; ///< Indexed by Scheme.
    std::array<uint64_t, 3> Samples{};
    /// Sum of the planned rate over every reach: what Samples converges
    /// to if the Bernoulli coin is fair (reach-weighted planned rate =
    /// ExpectedSamples / Reaches, directly comparable to Samples /
    /// Reaches).
    std::array<double, 3> ExpectedSamples{};
  };
  void enableReachStats();
  const ReachStats &reachStats() const { return Stats; }

private:
  /// Makes the joint sampling decision for one reach of \p SiteId,
  /// recording reach stats when enabled.
  bool shouldSample(uint32_t SiteId);
  /// The undecorated geometric-skip sampling decision.
  bool sampleDecision(uint32_t SiteId);
  void markObserved(uint32_t SiteId);
  void markTrue(uint32_t PredId);
  /// Records the six relational predicates of a returns/scalar-pairs site.
  void recordSixWay(const SiteInfo &Site, int64_t Lhs, int64_t Rhs);

  /// Builds the CSR node -> enabled-site dispatch index.
  void buildNodeIndex(const std::vector<uint8_t> *EnabledSites);

  /// The enabled site ids instrumenting \p NodeId (empty for unknown or
  /// fully pruned nodes).
  struct SiteSpan {
    const uint32_t *First;
    const uint32_t *Last;
    const uint32_t *begin() const { return First; }
    const uint32_t *end() const { return Last; }
  };
  SiteSpan activeSites(int NodeId) const {
    auto Node = static_cast<size_t>(static_cast<uint32_t>(NodeId));
    if (Node + 1 >= NodeStart.size())
      return {nullptr, nullptr};
    return {NodeSites.data() + NodeStart[Node],
            NodeSites.data() + NodeStart[Node + 1]};
  }

  const SiteTable &Sites;
  SamplingPlan Plan;

  /// CSR dispatch: the enabled sites of node N are
  /// NodeSites[NodeStart[N] .. NodeStart[N+1]).
  std::vector<uint32_t> NodeStart;
  std::vector<uint32_t> NodeSites;

  /// Seed of the current run; each site derives its own RNG stream from it
  /// lazily on first reach (see sampleDecision).
  uint64_t RunSeedBase = 0;
  std::vector<Rng> SiteRng;

  bool TrackReaches = false;
  ReachStats Stats;
  /// Site id -> Scheme, materialized by enableReachStats().
  std::vector<uint8_t> SchemeOf;

  // Dense scratch, reset in O(touched) at run end. A site's countdown is
  // SamplingAccel::Uninit until its first sampled-rate reach of the run
  // draws the initial geometric skip; every initialized site is recorded
  // in TouchedCountdowns so takeReport can restore the sentinel. The
  // countdown array doubles as the engine fast path's decrement target
  // (Accel.Countdown points at it), which is why initialization must be
  // observable in the value itself rather than in a side epoch: the engine
  // tests only the countdown word.
  std::vector<uint64_t> Countdown;
  std::vector<uint32_t> SiteObserved;
  std::vector<uint32_t> PredTrue;
  std::vector<uint32_t> TouchedSites;
  std::vector<uint32_t> TouchedPreds;
  std::vector<uint32_t> TouchedCountdowns;

  /// Node -> fast-path classification plus the countdown base pointer,
  /// built once alongside the CSR index (node population never changes).
  SamplingAccel Accel;
};

} // namespace sbi

#endif // SBI_INSTRUMENT_COLLECTOR_H
