//===- instrument/Sites.h - Instrumentation sites and predicates ----------===//
//
// Part of the SBI project: a reproduction of "Scalable Statistical Bug
// Isolation" (Liblit et al., PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static enumeration of instrumentation sites and predicates for the three
/// schemes of Section 2:
///
///   branches:     at each conditional (if/while/for tests and the
///                 short-circuit operators && and ||), two predicates: the
///                 condition was ever true / ever false.
///   returns:      at each scalar-returning call site, six predicates on
///                 the sign of the returned value: <0, <=0, >0, >=0, ==0,
///                 !=0.
///   scalar-pairs: at each assignment x = ... to an int variable, for each
///                 same-typed in-scope variable y and each constant c used
///                 in the enclosing function, six relational predicates on
///                 the new value of x vs y (or c). Each (x,y) / (x,c) pair
///                 is a distinct site, exactly as in the paper, so pairs
///                 are sampled independently.
///
/// All predicates at one site are observed jointly when the site is
/// sampled; the runtime hands the observer a node id, and this table maps
/// node ids to the contiguous range of sites rooted at that node.
///
//===----------------------------------------------------------------------===//

#ifndef SBI_INSTRUMENT_SITES_H
#define SBI_INSTRUMENT_SITES_H

#include "lang/AST.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sbi {

enum class Scheme { Branches, Returns, ScalarPairs };

const char *schemeName(Scheme S);

/// Relational operator of one predicate within a site.
enum class PredicateOp {
  IsTrue,  // branches
  IsFalse, // branches
  Lt,      // returns / scalar-pairs
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
};

const char *predicateOpSpelling(PredicateOp Op);

struct PredicateInfo {
  uint32_t Id = 0;
  uint32_t Site = 0;
  PredicateOp Op = PredicateOp::IsTrue;
  /// Human-readable text, e.g. "token_index > 500" or "strcmp(...) == 0".
  std::string Text;
};

struct SiteInfo {
  uint32_t Id = 0;
  Scheme SchemeKind = Scheme::Branches;
  /// AST node id of the statement/expression that triggers the site.
  int NodeId = -1;
  std::string Function;
  int Line = 0;
  uint32_t FirstPredicate = 0;
  uint32_t NumPredicates = 0;

  // Scalar-pairs metadata: the comparand is either a variable or a constant.
  bool PairIsConstant = false;
  VarSlot PairVar;
  int64_t PairConstant = 0;
};

/// Which schemes to enable and how to bound the scalar-pairs fan-out.
struct SiteOptions {
  bool Branches = true;
  bool Returns = true;
  bool ScalarPairs = true;
  /// At most this many distinct constants per function participate in
  /// scalar-pairs (smallest first, after deduplication).
  int MaxConstantsPerFunction = 6;
  /// Functions whose names start with this prefix receive no
  /// instrumentation at all. This models code outside the instrumentor's
  /// reach — libc in the paper's C studies (BC's overrun crashed inside
  /// malloc, which CBI never saw) — and doubles as the paper's escape
  /// hatch of excluding performance-critical code from instrumentation.
  std::string ExcludedFunctionPrefix = "__lib_";
};

/// The full static site/predicate table for a program.
class SiteTable {
public:
  /// Builds the table for \p Prog (which must have passed Sema).
  static SiteTable build(const Program &Prog, const SiteOptions &Opts = {});

  uint32_t numSites() const { return static_cast<uint32_t>(Sites.size()); }
  uint32_t numPredicates() const {
    return static_cast<uint32_t>(Predicates.size());
  }

  const SiteInfo &site(uint32_t Id) const { return Sites[Id]; }
  const PredicateInfo &predicate(uint32_t Id) const { return Predicates[Id]; }
  const std::vector<SiteInfo> &sites() const { return Sites; }
  const std::vector<PredicateInfo> &predicates() const { return Predicates; }

  /// The contiguous site range rooted at AST node \p NodeId ({0,0} if the
  /// node is not instrumented).
  struct SiteRange {
    uint32_t First = 0;
    uint32_t Count = 0;
  };
  SiteRange sitesForNode(int NodeId) const {
    if (NodeId < 0 || static_cast<size_t>(NodeId) >= ByNode.size())
      return {};
    return ByNode[static_cast<size_t>(NodeId)];
  }

private:
  std::vector<SiteInfo> Sites;
  std::vector<PredicateInfo> Predicates;
  std::vector<SiteRange> ByNode;

  friend class SiteBuilder;
};

} // namespace sbi

#endif // SBI_INSTRUMENT_SITES_H
