//===- instrument/Collector.cpp - Sampling and report collection ----------===//

#include "instrument/Collector.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace sbi;

SamplingPlan SamplingPlan::full(uint32_t NumSites) {
  SamplingPlan Plan;
  Plan.Rates.assign(NumSites, 1.0);
  Plan.Name = "full";
  return Plan;
}

SamplingPlan SamplingPlan::uniform(uint32_t NumSites, double Rate) {
  SamplingPlan Plan;
  Plan.Rates.assign(NumSites, std::clamp(Rate, 0.0, 1.0));
  Plan.Name = format("uniform(%.4f)", Rate);
  return Plan;
}

SamplingPlan
SamplingPlan::adaptive(const std::vector<double> &MeanReachPerRun,
                       double TargetSamples, double MinRate) {
  SamplingPlan Plan;
  Plan.Rates.reserve(MeanReachPerRun.size());
  for (double Mean : MeanReachPerRun) {
    double Rate = Mean <= TargetSamples ? 1.0 : TargetSamples / Mean;
    Rate = std::max(Rate, MinRate);
    // Sampling at a rate close to 1 costs more (a geometric draw per
    // reach) than it saves; snap such sites to complete monitoring.
    if (Rate > 0.5)
      Rate = 1.0;
    Plan.Rates.push_back(Rate);
  }
  Plan.Name = format("adaptive(target=%g,min=%g)", TargetSamples, MinRate);
  return Plan;
}

ReportCollector::ReportCollector(const SiteTable &Sites, SamplingPlan Plan,
                                 const std::vector<uint8_t> *EnabledSites)
    : Sites(Sites), Plan(std::move(Plan)) {
  assert(this->Plan.numSites() == Sites.numSites() &&
         "sampling plan does not match the site table");
  assert((!EnabledSites || EnabledSites->size() == Sites.numSites()) &&
         "enabled-site mask does not match the site table");
  uint32_t NumSites = Sites.numSites();
  Countdown.assign(NumSites, SamplingAccel::Uninit);
  SiteObserved.assign(NumSites, 0);
  PredTrue.assign(Sites.numPredicates(), 0);
  SiteRng.assign(NumSites, Rng(0));
  buildNodeIndex(EnabledSites);
}

void ReportCollector::buildNodeIndex(
    const std::vector<uint8_t> *EnabledSites) {
  uint32_t NumNodes = 0;
  for (const SiteInfo &Site : Sites.sites())
    NumNodes = std::max(NumNodes, static_cast<uint32_t>(Site.NodeId) + 1);
  NodeStart.assign(NumNodes + 1, 0);
  for (const SiteInfo &Site : Sites.sites())
    if (!EnabledSites || (*EnabledSites)[Site.Id])
      ++NodeStart[static_cast<size_t>(Site.NodeId) + 1];
  for (size_t I = 1; I < NodeStart.size(); ++I)
    NodeStart[I] += NodeStart[I - 1];
  NodeSites.resize(NodeStart.back());
  // Site ids ascend and each node's sites are contiguous, so a single
  // forward pass with a per-node cursor fills each CSR row in id order.
  std::vector<uint32_t> Cursor(NodeStart.begin(), NodeStart.end() - 1);
  for (const SiteInfo &Site : Sites.sites())
    if (!EnabledSites || (*EnabledSites)[Site.Id])
      NodeSites[Cursor[static_cast<size_t>(Site.NodeId)]++] = Site.Id;

  // Classify every node for the engine fast path. A node is only hoistable
  // when every enabled site samples at a rate strictly inside (0, 1): a
  // rate-1.0 site means every reach is a sample (the observer must always
  // run), and a rate-0.0 site is never sampled and consumes no draw (so it
  // simply drops out of the fan span). One eligible site hoists to a single
  // decrement; several hoist to a FanNode span scan. Each site's decision
  // is independent (own countdown, own RNG stream), so bulk-decrementing a
  // fan is exactly the sequence of per-site decrements sampleDecision would
  // have made.
  Accel.NodeSite.assign(NumNodes, SamplingAccel::SkipNode);
  Accel.FanStart.assign(NumNodes + 1, 0);
  Accel.FanSites.clear();
  for (uint32_t Node = 0; Node < NumNodes; ++Node) {
    uint32_t First = NodeStart[Node], Last = NodeStart[Node + 1];
    bool AnyFull = false;
    uint32_t NumSampled = 0, OnlySite = 0;
    for (uint32_t I = First; I < Last && !AnyFull; ++I) {
      double Rate = Plan.rate(NodeSites[I]);
      if (Rate >= 1.0)
        AnyFull = true;
      else if (Rate > 0.0) {
        ++NumSampled;
        OnlySite = NodeSites[I];
      }
    }
    if (AnyFull)
      Accel.NodeSite[Node] = SamplingAccel::CallObserver;
    else if (NumSampled == 1)
      Accel.NodeSite[Node] = OnlySite;
    else if (NumSampled > 1) {
      Accel.NodeSite[Node] = SamplingAccel::FanNode;
      for (uint32_t I = First; I < Last; ++I)
        if (Plan.rate(NodeSites[I]) > 0.0)
          Accel.FanSites.push_back(NodeSites[I]);
    }
    // else: no enabled site sampled above rate 0 — stays SkipNode.
    Accel.FanStart[Node + 1] =
        static_cast<uint32_t>(Accel.FanSites.size());
  }
  Accel.Countdown = Countdown.data();
}

void ReportCollector::beginRun(uint64_t RunSeed) {
  RunSeedBase = RunSeed;
  assert(TouchedSites.empty() && TouchedPreds.empty() &&
         TouchedCountdowns.empty() &&
         "takeReport must be called before the next beginRun");
}

RawReport ReportCollector::takeReport() {
  RawReport Report;
  std::sort(TouchedSites.begin(), TouchedSites.end());
  Report.SiteObservations.reserve(TouchedSites.size());
  for (uint32_t Site : TouchedSites) {
    Report.SiteObservations.emplace_back(Site, SiteObserved[Site]);
    SiteObserved[Site] = 0;
  }
  TouchedSites.clear();

  std::sort(TouchedPreds.begin(), TouchedPreds.end());
  Report.TruePredicates.reserve(TouchedPreds.size());
  for (uint32_t Pred : TouchedPreds) {
    Report.TruePredicates.emplace_back(Pred, PredTrue[Pred]);
    PredTrue[Pred] = 0;
  }
  TouchedPreds.clear();

  // Restore the Uninit sentinel so the next run's first reach of each site
  // reseeds its RNG stream. Engine fast paths only ever decrement values
  // that sampleDecision initialized, so this list is complete even when
  // most decrements bypassed the observer.
  for (uint32_t Site : TouchedCountdowns)
    Countdown[Site] = SamplingAccel::Uninit;
  TouchedCountdowns.clear();
  return Report;
}

void ReportCollector::enableReachStats() {
  TrackReaches = true;
  SchemeOf.resize(Sites.numSites());
  for (uint32_t Site = 0; Site < Sites.numSites(); ++Site)
    SchemeOf[Site] = static_cast<uint8_t>(Sites.site(Site).SchemeKind);
}

bool ReportCollector::shouldSample(uint32_t SiteId) {
  if (!TrackReaches)
    return sampleDecision(SiteId);
  bool Sampled = sampleDecision(SiteId);
  size_t Scheme = SchemeOf[SiteId];
  ++Stats.Reaches[Scheme];
  Stats.Samples[Scheme] += Sampled ? 1 : 0;
  Stats.ExpectedSamples[Scheme] += Plan.rate(SiteId);
  return Sampled;
}

bool ReportCollector::sampleDecision(uint32_t SiteId) {
  double Rate = Plan.rate(SiteId);
  if (Rate >= 1.0)
    return true;
  if (Rate <= 0.0)
    return false;
  // Geometric skip counting: instead of flipping a coin on every reach,
  // draw how many reaches to skip until the next sample (Section 2's
  // statistically fair Bernoulli process, with the fast path of the
  // original CBI instrumentor). Each site draws from its own RNG stream,
  // seeded from (run seed, site id) on first reach within the run, so the
  // draw sequence a site sees depends only on the run — never on which
  // other sites are instrumented or how often they are reached.
  if (Countdown[SiteId] == SamplingAccel::Uninit) {
    TouchedCountdowns.push_back(SiteId);
    SiteRng[SiteId].reseed(RunSeedBase ^
                           (0x5bd1e995bc9e1d34ULL +
                            SiteId * 0x9e3779b97f4a7c15ULL));
    Countdown[SiteId] = SiteRng[SiteId].nextGeometricSkip(Rate);
  }
  if (Countdown[SiteId] == 0) {
    Countdown[SiteId] = SiteRng[SiteId].nextGeometricSkip(Rate);
    return true;
  }
  --Countdown[SiteId];
  return false;
}

void ReportCollector::markObserved(uint32_t SiteId) {
  if (SiteObserved[SiteId] == 0)
    TouchedSites.push_back(SiteId);
  ++SiteObserved[SiteId];
}

void ReportCollector::markTrue(uint32_t PredId) {
  if (PredTrue[PredId] == 0)
    TouchedPreds.push_back(PredId);
  ++PredTrue[PredId];
}

void ReportCollector::recordSixWay(const SiteInfo &Site, int64_t Lhs,
                                   int64_t Rhs) {
  // Predicate order within the site: Lt, Le, Gt, Ge, Eq, Ne (see
  // SiteBuilder). All six are observed jointly; the true ones get counts.
  uint32_t First = Site.FirstPredicate;
  assert(Site.NumPredicates == 6 && "six-way site layout");
  if (Lhs < Rhs)
    markTrue(First + 0);
  if (Lhs <= Rhs)
    markTrue(First + 1);
  if (Lhs > Rhs)
    markTrue(First + 2);
  if (Lhs >= Rhs)
    markTrue(First + 3);
  if (Lhs == Rhs)
    markTrue(First + 4);
  if (Lhs != Rhs)
    markTrue(First + 5);
}

void ReportCollector::onBranch(int NodeId, bool Taken) {
  for (uint32_t SiteId : activeSites(NodeId)) {
    if (!shouldSample(SiteId))
      continue;
    markObserved(SiteId);
    const SiteInfo &Site = Sites.site(SiteId);
    assert(Site.SchemeKind == Scheme::Branches && "node scheme mismatch");
    markTrue(Site.FirstPredicate + (Taken ? 0 : 1));
  }
}

void ReportCollector::onScalarReturn(int NodeId, int64_t Result) {
  for (uint32_t SiteId : activeSites(NodeId)) {
    if (!shouldSample(SiteId))
      continue;
    markObserved(SiteId);
    recordSixWay(Sites.site(SiteId), Result, 0);
  }
}

void ReportCollector::onScalarAssign(int NodeId, int64_t NewValue,
                                     const FrameView &Frame) {
  for (uint32_t SiteId : activeSites(NodeId)) {
    // Make the sampling decision before touching the comparand: skipped
    // reaches must stay cheap (this is the whole point of sampling).
    if (!shouldSample(SiteId))
      continue;
    const SiteInfo &Site = Sites.site(SiteId);
    int64_t Rhs;
    if (Site.PairIsConstant) {
      Rhs = Site.PairConstant;
    } else {
      const Value &Comparand = Frame.get(Site.PairVar);
      // A defensive guard: a non-int comparand (impossible for lexically
      // visible ints, which are always initialized) is just not observed.
      if (!Comparand.isInt())
        continue;
      Rhs = Comparand.asInt();
    }
    markObserved(SiteId);
    recordSixWay(Site, NewValue, Rhs);
  }
}
