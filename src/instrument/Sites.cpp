//===- instrument/Sites.cpp - Instrumentation sites and predicates --------===//

#include "instrument/Sites.h"

#include "lang/AstPrinter.h"
#include "lang/Intrinsics.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace sbi;

const char *sbi::schemeName(Scheme S) {
  switch (S) {
  case Scheme::Branches:
    return "branches";
  case Scheme::Returns:
    return "returns";
  case Scheme::ScalarPairs:
    return "scalar-pairs";
  }
  return "?";
}

const char *sbi::predicateOpSpelling(PredicateOp Op) {
  switch (Op) {
  case PredicateOp::IsTrue:
    return "is TRUE";
  case PredicateOp::IsFalse:
    return "is FALSE";
  case PredicateOp::Lt:
    return "<";
  case PredicateOp::Le:
    return "<=";
  case PredicateOp::Gt:
    return ">";
  case PredicateOp::Ge:
    return ">=";
  case PredicateOp::Eq:
    return "==";
  case PredicateOp::Ne:
    return "!=";
  }
  return "?";
}

namespace sbi {

class SiteBuilder {
public:
  SiteBuilder(const Program &Prog, const SiteOptions &Opts)
      : Prog(Prog), Opts(Opts) {}

  SiteTable build();

private:
  void walkFunction(const FuncDecl &Func);
  void walkStmt(const Stmt &S);
  void walkExpr(const Expr &E);
  void collectConstants(const Stmt &S);
  void collectConstantsInExpr(const Expr &E);

  SiteInfo &startSite(Scheme SchemeKind, int NodeId, int Line);
  void addPredicate(uint32_t SiteId, PredicateOp Op, std::string Text);
  void addBranchSite(int NodeId, int Line, const std::string &CondText);
  void addReturnSite(const CallExpr &Call);
  void addScalarPairSites(int NodeId, int Line, const std::string &LhsName,
                          const std::vector<ScopedIntVar> &VisibleVars);

  const Program &Prog;
  const SiteOptions &Opts;
  SiteTable Table;
  const FuncDecl *CurrentFunction = nullptr;
  std::vector<int64_t> FunctionConstants;
};

} // namespace sbi

SiteInfo &SiteBuilder::startSite(Scheme SchemeKind, int NodeId, int Line) {
  SiteInfo Site;
  Site.Id = static_cast<uint32_t>(Table.Sites.size());
  Site.SchemeKind = SchemeKind;
  Site.NodeId = NodeId;
  Site.Function = CurrentFunction ? CurrentFunction->Name : "<global>";
  Site.Line = Line;
  Site.FirstPredicate = static_cast<uint32_t>(Table.Predicates.size());
  Table.Sites.push_back(std::move(Site));

  // Maintain the node-id -> contiguous-site-range index. Sites for one node
  // are always created back to back.
  auto &Range = Table.ByNode[static_cast<size_t>(NodeId)];
  if (Range.Count == 0)
    Range.First = Table.Sites.back().Id;
  ++Range.Count;
  return Table.Sites.back();
}

void SiteBuilder::addPredicate(uint32_t SiteId, PredicateOp Op,
                               std::string Text) {
  PredicateInfo Pred;
  Pred.Id = static_cast<uint32_t>(Table.Predicates.size());
  Pred.Site = SiteId;
  Pred.Op = Op;
  Pred.Text = std::move(Text);
  Table.Predicates.push_back(std::move(Pred));
  ++Table.Sites[SiteId].NumPredicates;
}

void SiteBuilder::addBranchSite(int NodeId, int Line,
                                const std::string &CondText) {
  if (!Opts.Branches)
    return;
  SiteInfo &Site = startSite(Scheme::Branches, NodeId, Line);
  uint32_t Id = Site.Id;
  addPredicate(Id, PredicateOp::IsTrue, CondText + " is TRUE");
  addPredicate(Id, PredicateOp::IsFalse, CondText + " is FALSE");
}

void SiteBuilder::addReturnSite(const CallExpr &Call) {
  if (!Opts.Returns)
    return;
  // Only scalar-returning call sites qualify. User functions are
  // dynamically typed, so every user call site is instrumented (the runtime
  // reports only int results); intrinsics are filtered statically.
  if (!Call.Target) {
    const IntrinsicInfo &Info = intrinsicInfo(Call.IntrinsicId);
    if (!Info.ReturnsInt)
      return;
  }
  SiteInfo &Site = startSite(Scheme::Returns, Call.Id, Call.Line);
  uint32_t Id = Site.Id;
  std::string Base = Call.Callee;
  static const PredicateOp Ops[] = {PredicateOp::Lt, PredicateOp::Le,
                                    PredicateOp::Gt, PredicateOp::Ge,
                                    PredicateOp::Eq, PredicateOp::Ne};
  for (PredicateOp Op : Ops)
    addPredicate(Id, Op, format("%s %s 0", Base.c_str(),
                                predicateOpSpelling(Op)));
}

void SiteBuilder::addScalarPairSites(
    int NodeId, int Line, const std::string &LhsName,
    const std::vector<ScopedIntVar> &VisibleVars) {
  if (!Opts.ScalarPairs)
    return;
  static const PredicateOp Ops[] = {PredicateOp::Lt, PredicateOp::Le,
                                    PredicateOp::Gt, PredicateOp::Ge,
                                    PredicateOp::Eq, PredicateOp::Ne};

  for (const ScopedIntVar &Var : VisibleVars) {
    SiteInfo &Site = startSite(Scheme::ScalarPairs, NodeId, Line);
    Site.PairIsConstant = false;
    Site.PairVar = Var.Slot;
    uint32_t Id = Site.Id;
    for (PredicateOp Op : Ops)
      addPredicate(Id, Op,
                   format("%s %s %s", LhsName.c_str(),
                          predicateOpSpelling(Op), Var.Name.c_str()));
  }

  for (int64_t Constant : FunctionConstants) {
    SiteInfo &Site = startSite(Scheme::ScalarPairs, NodeId, Line);
    Site.PairIsConstant = true;
    Site.PairConstant = Constant;
    uint32_t Id = Site.Id;
    for (PredicateOp Op : Ops)
      addPredicate(Id, Op,
                   format("%s %s %lld", LhsName.c_str(),
                          predicateOpSpelling(Op),
                          static_cast<long long>(Constant)));
  }
}

void SiteBuilder::collectConstantsInExpr(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLit:
    FunctionConstants.push_back(static_cast<const IntLitExpr &>(E).Value);
    return;
  case ExprKind::StrLit:
  case ExprKind::NullLit:
  case ExprKind::VarRef:
    return;
  case ExprKind::Unary:
    collectConstantsInExpr(*static_cast<const UnaryExpr &>(E).Operand);
    return;
  case ExprKind::Binary: {
    const auto &Bin = static_cast<const BinaryExpr &>(E);
    collectConstantsInExpr(*Bin.Lhs);
    collectConstantsInExpr(*Bin.Rhs);
    return;
  }
  case ExprKind::Index: {
    const auto &Index = static_cast<const IndexExpr &>(E);
    collectConstantsInExpr(*Index.Base);
    collectConstantsInExpr(*Index.Subscript);
    return;
  }
  case ExprKind::Field:
    collectConstantsInExpr(*static_cast<const FieldExpr &>(E).Base);
    return;
  case ExprKind::Call:
    for (const ExprPtr &Arg : static_cast<const CallExpr &>(E).Args)
      collectConstantsInExpr(*Arg);
    return;
  case ExprKind::New:
    return;
  }
}

void SiteBuilder::collectConstants(const Stmt &S) {
  switch (S.Kind) {
  case StmtKind::Expr:
    collectConstantsInExpr(*static_cast<const ExprStmt &>(S).E);
    return;
  case StmtKind::Assign: {
    const auto &Assign = static_cast<const AssignStmt &>(S);
    collectConstantsInExpr(*Assign.Target);
    collectConstantsInExpr(*Assign.Value);
    return;
  }
  case StmtKind::VarDecl: {
    const auto &Decl = static_cast<const VarDeclStmt &>(S);
    if (Decl.Init)
      collectConstantsInExpr(*Decl.Init);
    return;
  }
  case StmtKind::Block:
    for (const StmtPtr &Child : static_cast<const BlockStmt &>(S).Body)
      collectConstants(*Child);
    return;
  case StmtKind::If: {
    const auto &If = static_cast<const IfStmt &>(S);
    collectConstantsInExpr(*If.Cond);
    collectConstants(*If.Then);
    if (If.Else)
      collectConstants(*If.Else);
    return;
  }
  case StmtKind::While: {
    const auto &While = static_cast<const WhileStmt &>(S);
    collectConstantsInExpr(*While.Cond);
    collectConstants(*While.Body);
    return;
  }
  case StmtKind::For: {
    const auto &For = static_cast<const ForStmt &>(S);
    if (For.Init)
      collectConstants(*For.Init);
    if (For.Cond)
      collectConstantsInExpr(*For.Cond);
    if (For.Step)
      collectConstants(*For.Step);
    collectConstants(*For.Body);
    return;
  }
  case StmtKind::Return: {
    const auto &Return = static_cast<const ReturnStmt &>(S);
    if (Return.Value)
      collectConstantsInExpr(*Return.Value);
    return;
  }
  case StmtKind::Break:
  case StmtKind::Continue:
    return;
  }
}

void SiteBuilder::walkExpr(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLit:
  case ExprKind::StrLit:
  case ExprKind::NullLit:
  case ExprKind::VarRef:
    return;
  case ExprKind::Unary:
    walkExpr(*static_cast<const UnaryExpr &>(E).Operand);
    return;
  case ExprKind::Binary: {
    const auto &Bin = static_cast<const BinaryExpr &>(E);
    walkExpr(*Bin.Lhs);
    walkExpr(*Bin.Rhs);
    if (Bin.Op == BinaryOp::And || Bin.Op == BinaryOp::Or)
      addBranchSite(Bin.Id, Bin.Line, exprToString(*Bin.Lhs));
    return;
  }
  case ExprKind::Index: {
    const auto &Index = static_cast<const IndexExpr &>(E);
    walkExpr(*Index.Base);
    walkExpr(*Index.Subscript);
    return;
  }
  case ExprKind::Field:
    walkExpr(*static_cast<const FieldExpr &>(E).Base);
    return;
  case ExprKind::Call: {
    const auto &Call = static_cast<const CallExpr &>(E);
    for (const ExprPtr &Arg : Call.Args)
      walkExpr(*Arg);
    addReturnSite(Call);
    return;
  }
  case ExprKind::New:
    return;
  }
}

void SiteBuilder::walkStmt(const Stmt &S) {
  switch (S.Kind) {
  case StmtKind::Expr:
    walkExpr(*static_cast<const ExprStmt &>(S).E);
    return;

  case StmtKind::Assign: {
    const auto &Assign = static_cast<const AssignStmt &>(S);
    walkExpr(*Assign.Target);
    walkExpr(*Assign.Value);
    if (Assign.TargetIsIntVar)
      addScalarPairSites(
          Assign.Id, Assign.Line,
          static_cast<const VarRefExpr &>(*Assign.Target).Name,
          Assign.VisibleIntVars);
    return;
  }

  case StmtKind::VarDecl: {
    const auto &Decl = static_cast<const VarDeclStmt &>(S);
    if (Decl.Init) {
      walkExpr(*Decl.Init);
      if (Decl.DeclKind == VarKind::Int)
        addScalarPairSites(Decl.Id, Decl.Line, Decl.Name,
                           Decl.VisibleIntVars);
    }
    return;
  }

  case StmtKind::Block:
    for (const StmtPtr &Child : static_cast<const BlockStmt &>(S).Body)
      walkStmt(*Child);
    return;

  case StmtKind::If: {
    const auto &If = static_cast<const IfStmt &>(S);
    walkExpr(*If.Cond);
    addBranchSite(If.Id, If.Line, exprToString(*If.Cond));
    walkStmt(*If.Then);
    if (If.Else)
      walkStmt(*If.Else);
    return;
  }

  case StmtKind::While: {
    const auto &While = static_cast<const WhileStmt &>(S);
    walkExpr(*While.Cond);
    addBranchSite(While.Id, While.Line, exprToString(*While.Cond));
    walkStmt(*While.Body);
    return;
  }

  case StmtKind::For: {
    const auto &For = static_cast<const ForStmt &>(S);
    if (For.Init)
      walkStmt(*For.Init);
    if (For.Cond)
      walkExpr(*For.Cond);
    addBranchSite(For.Id, For.Line,
                  For.Cond ? exprToString(*For.Cond) : std::string("1"));
    if (For.Step)
      walkStmt(*For.Step);
    walkStmt(*For.Body);
    return;
  }

  case StmtKind::Return: {
    const auto &Return = static_cast<const ReturnStmt &>(S);
    if (Return.Value)
      walkExpr(*Return.Value);
    return;
  }

  case StmtKind::Break:
  case StmtKind::Continue:
    return;
  }
}

void SiteBuilder::walkFunction(const FuncDecl &Func) {
  CurrentFunction = &Func;

  FunctionConstants.clear();
  collectConstants(*Func.Body);
  std::sort(FunctionConstants.begin(), FunctionConstants.end());
  FunctionConstants.erase(
      std::unique(FunctionConstants.begin(), FunctionConstants.end()),
      FunctionConstants.end());
  if (static_cast<int>(FunctionConstants.size()) >
      Opts.MaxConstantsPerFunction)
    FunctionConstants.resize(
        static_cast<size_t>(Opts.MaxConstantsPerFunction));

  walkStmt(*Func.Body);
  CurrentFunction = nullptr;
}

SiteTable SiteBuilder::build() {
  Table.ByNode.assign(static_cast<size_t>(Prog.NumNodeIds), {});
  for (const auto &Func : Prog.Functions) {
    if (!Opts.ExcludedFunctionPrefix.empty() &&
        Func->Name.compare(0, Opts.ExcludedFunctionPrefix.size(),
                           Opts.ExcludedFunctionPrefix) == 0)
      continue;
    walkFunction(*Func);
  }
  return std::move(Table);
}

SiteTable SiteTable::build(const Program &Prog, const SiteOptions &Opts) {
  return SiteBuilder(Prog, Opts).build();
}
