//===- examples/adaptive_sampling.cpp - Nonuniform sampling in action -----===//
//
// Section 4 of the paper: with naive uniform 1/100 sampling, two equally
// good predictors at sites with very different execution frequencies get
// wildly different observation counts — rare sites are almost never
// sampled and their predictors drown. The fix: train per-site rates on
// preliminary runs so every site yields ~100 samples per run, clamped at
// 1/100.
//
// This example trains an adaptive plan for the EXIF subject, prints the
// resulting rate spectrum, and shows the practical consequence: the rare
// maker-note bug is observed under the adaptive plan but essentially
// invisible under uniform 1/100.
//
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"
#include "harness/Campaign.h"
#include "harness/Tables.h"

#include <algorithm>
#include <cstdio>

using namespace sbi;

namespace {

CampaignResult runWith(SamplingMode Mode) {
  CampaignOptions Options;
  Options.NumRuns = 3000;
  Options.Seed = 31337;
  Options.Mode = Mode;
  Options.UniformRate = 0.01;
  return runCampaign(exifSubject(), Options);
}

} // namespace

int main() {
  std::printf("== adaptive (nonuniform) sampling on EXIF ==\n\n");

  CampaignResult Adaptive = runWith(SamplingMode::Adaptive);

  // The rate spectrum: how many sites run at which sampling rate.
  std::vector<double> Rates;
  for (uint32_t Site = 0; Site < Adaptive.Plan.numSites(); ++Site)
    Rates.push_back(Adaptive.Plan.rate(Site));
  std::sort(Rates.begin(), Rates.end());
  size_t AtFloor = 0, Reduced = 0, Full = 0;
  for (double Rate : Rates) {
    if (Rate <= 0.01 + 1e-12)
      ++AtFloor;
    else if (Rate < 1.0)
      ++Reduced;
    else
      ++Full;
  }
  std::printf("trained plan over %zu sites:\n", Rates.size());
  std::printf("  %5zu sites at the 1/100 floor (hottest code)\n", AtFloor);
  std::printf("  %5zu sites at intermediate rates\n", Reduced);
  std::printf("  %5zu sites at rate 1.0 (reached < 100 times per run)\n\n",
              Full);

  // Practical consequence: observation counts for the rare bug-3
  // predicate under each plan.
  CampaignResult Uniform = runWith(SamplingMode::Uniform);

  auto observationsOf = [](const CampaignResult &Result,
                           const char *TextFragment) {
    uint64_t F = 0, Observed = 0;
    for (uint32_t Pred = 0; Pred < Result.Sites.numPredicates(); ++Pred) {
      if (Result.Sites.predicate(Pred).Text.find(TextFragment) ==
          std::string::npos)
        continue;
      uint32_t Site = Result.Sites.predicate(Pred).Site;
      for (const FeedbackReport &Report : Result.Reports.reports()) {
        if (Report.observedTrue(Pred) && Report.Failed)
          ++F;
        if (Report.siteObserved(Site))
          ++Observed;
      }
      break; // One representative predicate is enough.
    }
    return std::pair<uint64_t, uint64_t>(F, Observed);
  };

  auto [AdaptiveF, AdaptiveObs] =
      observationsOf(Adaptive, "(o + s) > mn_buf_size is TRUE");
  auto [UniformF, UniformObs] =
      observationsOf(Uniform, "(o + s) > mn_buf_size is TRUE");
  std::printf("the rare maker-note predicate (bug 3's smoking gun):\n");
  std::printf("  adaptive:      observed in %llu runs, true in %llu "
              "failing runs\n",
              static_cast<unsigned long long>(AdaptiveObs),
              static_cast<unsigned long long>(AdaptiveF));
  std::printf("  uniform 1/100: observed in %llu runs, true in %llu "
              "failing runs\n\n",
              static_cast<unsigned long long>(UniformObs),
              static_cast<unsigned long long>(UniformF));

  // And the end-to-end effect on isolation.
  for (const CampaignResult *Result : {&Adaptive, &Uniform}) {
    CauseIsolator Isolator(Result->Sites, Result->Reports);
    AnalysisResult Analysis = Isolator.run();
    std::printf("%s: %zu predictors selected\n",
                Result == &Adaptive ? "adaptive" : "uniform 1/100",
                Analysis.Selected.size());
    for (const SelectedPredicate &Entry : Analysis.Selected)
      std::printf("  %s\n",
                  predicateLabel(Result->Sites, Entry.Pred).c_str());
  }
  std::printf("\nExpected: the adaptive plan isolates all three bugs "
              "including the rare one;\nuniform 1/100 typically misses "
              "rarely-reached predicates.\n");
  return 0;
}
