//===- examples/multi_bug_triage.cpp - Triaging a multi-bug program -------===//
//
// The paper's core scenario: a program with several undiagnosed bugs of
// very different frequencies, and a pile of labeled feedback reports. This
// example runs the bundled MOSS subject (9 seeded bugs), performs the full
// isolation, and walks the output the way an engineer would:
//
//   1. read the selected predictors in priority order,
//   2. check each predictor's ground-truth column (which real bug it
//      tracks — normally unknown, shown here because the subject is
//      seeded),
//   3. follow one predictor's affinity list to its related predicates.
//
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"
#include "harness/Campaign.h"
#include "harness/Tables.h"

#include <cstdio>

using namespace sbi;

int main() {
  std::printf("== multi-bug triage on MOSS (9 seeded bugs) ==\n\n");

  CampaignOptions Options;
  Options.NumRuns = 2000;
  Options.Seed = 7;
  CampaignResult Result = runCampaign(mossSubject(), Options);

  std::printf("%zu runs: %zu failing, %zu successful; %u predicates "
              "instrumented\n\n",
              Result.Reports.size(), Result.numFailing(),
              Result.numSuccessful(), Result.Sites.numPredicates());

  std::printf("ground truth (hidden from the analysis):\n");
  for (const auto &Stats : Result.Bugs)
    if (Stats.Triggered > 0)
      std::printf("  bug #%d (%s): %zu runs, %zu failing\n", Stats.BugId,
                  mossSubject()
                      .Bugs[static_cast<size_t>(Stats.BugId - 1)]
                      .Kind.c_str(),
                  Stats.Triggered, Stats.TriggeredAndFailed);
  std::printf("\n");

  CauseIsolator Isolator(Result.Sites, Result.Reports);
  AnalysisResult Analysis = Isolator.run();

  std::printf("selected predictors (elimination order), with per-bug "
              "failing-run columns:\n\n");
  std::printf("%s\n", renderSelectedList(Result.Sites, Result.Reports,
                                         Analysis.Selected,
                                         {1, 2, 3, 4, 5, 6, 7, 9},
                                         /*TopK=*/12)
                          .c_str());

  if (!Analysis.Selected.empty()) {
    std::printf("drilling into the top predictor's affinity list (related "
                "predicates an\nengineer would read next):\n\n");
    std::printf("%s\n",
                renderAffinity(Result.Sites, Analysis.Selected[0]).c_str());
  }

  std::printf("reading guide: each top predictor has one dominant bug "
              "column — the elimination\nalgorithm assigns roughly one "
              "predictor per bug, in failure-count order, and\nredundant "
              "predicates surface through affinity rather than cluttering "
              "the list.\n");
  return 0;
}
