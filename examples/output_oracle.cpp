//===- examples/output_oracle.cpp - Isolating a non-crashing bug ----------===//
//
// Section 4.1's point that "bugs other than crashing bugs can also be
// isolated, provided there is some way to recognize failing runs": this
// example builds a custom subject whose only bug produces silent wrong
// output, labels runs by comparing against a golden build (the oracle),
// and shows the isolator finding the cause — no crash ever happens.
//
// The subject is a toy tax calculator that applies a discount in the wrong
// order for one product category: output-only wrongness, the kind a crash
// reporter never sees.
//
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"
#include "feedback/Report.h"
#include "harness/Tables.h"
#include "instrument/Collector.h"
#include "lang/Sema.h"
#include "runtime/Interp.h"
#include "support/Random.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace sbi;

// args: category price discount
static const char Template[] = R"mc(
fn compute_total(int category, int price, int discount) {
  int taxrate = 10;
  if (category == 2) {
    taxrate = 25;       // Luxury goods.
  }
  int total = 0;
  if (category == 2) {
${LUXURY_PATH}
  } else {
    total = price - discount;
    total = total + total * taxrate / 100;
  }
  return total;
}

fn main() {
  int category = atoi(arg(0));
  int price = atoi(arg(1));
  int discount = atoi(arg(2));
  print("total ");
  println(compute_total(category, price, discount));
}
)mc";

static std::string buildSource(bool Buggy) {
  // The bug: tax applied before the discount for luxury goods.
  const char *BuggyPath = R"(    total = price + price * taxrate / 100;
    total = total - discount;)";
  const char *FixedPath = R"(    total = price - discount;
    total = total + total * taxrate / 100;)";
  return expandTemplate(Template,
                        {{"LUXURY_PATH", Buggy ? BuggyPath : FixedPath}});
}

int main() {
  std::vector<Diagnostic> Diags;
  std::unique_ptr<Program> Buggy = parseAndAnalyze(buildSource(true), Diags);
  std::unique_ptr<Program> Golden =
      parseAndAnalyze(buildSource(false), Diags);
  if (!Buggy || !Golden) {
    std::fprintf(stderr, "%s", renderDiagnostics(Diags).c_str());
    return 1;
  }

  SiteTable Sites = SiteTable::build(*Buggy);
  ReportCollector Collector(Sites, SamplingPlan::full(Sites.numSites()));
  ReportSet Reports(Sites.numSites(), Sites.numPredicates());

  Rng Seeder(1234);
  size_t Crashes = 0;
  for (int Run = 0; Run < 1500; ++Run) {
    Rng InputRng(Seeder.next());
    RunConfig Config;
    Config.Args = {
        format("%d", static_cast<int>(InputRng.nextInRange(0, 3))),
        format("%d", static_cast<int>(InputRng.nextInRange(10, 500))),
        format("%d", static_cast<int>(InputRng.nextInRange(0, 40)))};
    Config.Observer = &Collector;

    Collector.beginRun(Seeder.next());
    RunOutcome Outcome = runProgram(*Buggy, Config);
    Crashes += Outcome.crashed() ? 1 : 0;

    // The oracle: run the golden build on the same input, compare output.
    RunConfig GoldenConfig;
    GoldenConfig.Args = Config.Args;
    RunOutcome GoldenOutcome = runProgram(*Golden, GoldenConfig);

    FeedbackReport Report;
    Report.Counts = Collector.takeReport();
    Report.Failed =
        Outcome.failed() || Outcome.Output != GoldenOutcome.Output;
    Reports.add(std::move(Report));
  }

  std::printf("%zu runs, %zu labeled failing by the output oracle, %zu "
              "crashes\n\n",
              Reports.size(), Reports.numFailing(), Crashes);

  CauseIsolator Isolator(Sites, Reports);
  AnalysisResult Analysis = Isolator.run();
  std::printf("selected predictors:\n");
  for (const SelectedPredicate &Entry : Analysis.Selected)
    std::printf("  %s  (F=%llu, S=%llu)\n",
                predicateLabel(Sites, Entry.Pred).c_str(),
                static_cast<unsigned long long>(
                    Entry.InitialScores.counts().F),
                static_cast<unsigned long long>(
                    Entry.InitialScores.counts().S));

  std::printf("\nExpected: a category == 2 predicate tops the list — the "
              "discount-ordering bug\nis confined to the luxury path, and "
              "the oracle label is all the analysis needed.\n");
  return 0;
}
