//===- examples/quickstart.cpp - Statistical debugging in 80 lines --------===//
//
// The smallest end-to-end use of the library: take a buggy program, run it
// on random inputs under sampled instrumentation, and ask the statistical
// debugger which predicate predicts the failures.
//
// The subject is a little MicroC binary search with a classic off-by-one:
// `hi` starts at n instead of n - 1, so searching for a key larger than
// every element walks to data[n], one past the end. Whether that overrun
// crashes depends on the per-run heap padding — a non-deterministic,
// input-dependent bug, which is exactly the kind statistical debugging
// shines on.
//
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"
#include "feedback/Report.h"
#include "harness/Tables.h"
#include "instrument/Collector.h"
#include "instrument/Sites.h"
#include "lang/Sema.h"
#include "runtime/Interp.h"
#include "support/Random.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace sbi;

static const char BuggyProgram[] = R"mc(
// Binary search over sorted data. The bug: hi starts at n instead of
// n - 1, so a key greater than every element drives mid to n and reads
// data[n], one past the end.
fn find(arr data, int n, int key) {
  int lo = 0;
  int hi = n;              // The bug: should be n - 1.
  while (lo <= hi) {
    int mid = (lo + hi) / 2;
    int v = data[mid];     // mid reaches n when the key is above range.
    if (v == key) {
      return mid;
    }
    if (v < key) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return 0 - 1;
}

fn main() {
  int n = atoi(arg(0));
  int key = atoi(arg(1));
  arr data = mkarray(n);
  int i = 0;
  while (i < n) {
    data[i] = atoi(arg(2 + i));
    i = i + 1;
  }
  println(find(data, n, key));
}
)mc";

int main() {
  // 1. Compile the subject and enumerate instrumentation sites.
  std::vector<Diagnostic> Diags;
  std::unique_ptr<Program> Prog = parseAndAnalyze(BuggyProgram, Diags);
  if (!Prog) {
    std::fprintf(stderr, "%s", renderDiagnostics(Diags).c_str());
    return 1;
  }
  SiteTable Sites = SiteTable::build(*Prog);
  std::printf("instrumented %u sites / %u predicates\n", Sites.numSites(),
              Sites.numPredicates());

  // 2. Draw random inputs: sorted data in [0, 60), keys in [0, 99], so
  //    some searches run above the whole array and trip the off-by-one.
  Rng Seeder(2005);
  auto drawInput = [](Rng &InputRng, RunConfig &Config) {
    int N = static_cast<int>(InputRng.nextInRange(1, 10));
    std::vector<int> Data;
    for (int I = 0; I < N; ++I)
      Data.push_back(static_cast<int>(InputRng.nextInRange(0, 59)));
    std::sort(Data.begin(), Data.end());
    int Key = static_cast<int>(InputRng.nextInRange(0, 99));
    Config.Args.push_back(format("%d", N));
    Config.Args.push_back(format("%d", Key));
    for (int V : Data)
      Config.Args.push_back(format("%d", V));
    Config.OverrunPad = static_cast<size_t>(InputRng.nextBelow(4));
  };

  // 3. Train the paper's nonuniform sampling plan on a few preliminary
  //    runs: hot sites get low rates, rarely reached sites are always
  //    observed — without this, the once-per-run smoking gun would be
  //    sampled away.
  ReportCollector Trainer(Sites, SamplingPlan::full(Sites.numSites()));
  std::vector<double> MeanReach(Sites.numSites(), 0.0);
  const int TrainingRuns = 50;
  for (int Run = 0; Run < TrainingRuns; ++Run) {
    Rng InputRng(Seeder.next());
    RunConfig Config;
    drawInput(InputRng, Config);
    Config.Observer = &Trainer;
    Trainer.beginRun(Seeder.next());
    runProgram(*Prog, Config);
    for (const auto &[Site, Count] : Trainer.takeReport().SiteObservations)
      MeanReach[Site] += static_cast<double>(Count) / TrainingRuns;
  }
  ReportCollector Collector(Sites, SamplingPlan::adaptive(MeanReach));

  // 4. The campaign: 2,000 runs under sampled instrumentation.
  ReportSet Reports(Sites.numSites(), Sites.numPredicates());
  for (int Run = 0; Run < 2000; ++Run) {
    Rng InputRng(Seeder.next());
    RunConfig Config;
    drawInput(InputRng, Config);
    Config.Observer = &Collector;

    Collector.beginRun(Seeder.next());
    RunOutcome Outcome = runProgram(*Prog, Config);

    FeedbackReport Report;
    Report.Counts = Collector.takeReport();
    Report.Failed = Outcome.failed();
    Reports.add(std::move(Report));
  }
  std::printf("collected %zu reports: %zu failing, %zu successful\n",
              Reports.size(), Reports.numFailing(),
              Reports.numSuccessful());

  // 5. Isolate: prune non-predictors, rank, eliminate redundancy.
  CauseIsolator Isolator(Sites, Reports);
  AnalysisResult Analysis = Isolator.run();
  std::printf("%u predicates -> %zu survive the Increase test -> %zu "
              "selected\n\n",
              Sites.numPredicates(), Analysis.PrunedSurvivors.size(),
              Analysis.Selected.size());

  std::printf("top failure predictors:\n");
  for (size_t I = 0; I < Analysis.Selected.size() && I < 3; ++I) {
    const SelectedPredicate &Entry = Analysis.Selected[I];
    std::printf("  %zu. %s  (Importance %.3f, F=%llu S=%llu)\n", I + 1,
                predicateLabel(Sites, Entry.Pred).c_str(),
                Entry.InitialImportance,
                static_cast<unsigned long long>(
                    Entry.InitialScores.counts().F),
                static_cast<unsigned long long>(
                    Entry.InitialScores.counts().S));
  }
  std::printf("\nExpected: the predictors say the search index reached n "
              "(mid == n, lo >= n)\n— the off-by-one's footprint — rather "
              "than merely naming the crashing read.\n");
  return 0;
}
