//===- examples/early_warning.cpp - Predictors as on-line failure alarms --===//
//
// Section 5 of the paper: "knowing that a strong predictor of program
// failure has become true may enable preemptive action", and Section 6
// cites proactive-maintenance systems that predict impending failure.
//
// This example closes that loop. Phase 1 isolates the strongest failure
// predictor for the RHYTHMBOX subject offline, exactly as usual. Phase 2
// "deploys" a tiny on-line monitor — an ExecutionObserver that watches
// only the chosen predicate — into fresh runs, and measures how often the
// alarm fires before the crash and with how much lead time (in dynamic
// events) a hypothetical recovery mechanism would have had.
//
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"
#include "harness/Campaign.h"
#include "harness/Tables.h"
#include "runtime/Interp.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace sbi;

namespace {

/// Watches a single predicate on line; records the dynamic-event index at
/// which it first became true. This is the "deployed alarm": no counting,
/// no reports, just one comparison per reach of one site.
class AlarmObserver : public ExecutionObserver {
public:
  AlarmObserver(const SiteTable &Sites, uint32_t PredId)
      : Sites(Sites), Site(Sites.site(Sites.predicate(PredId).Site)),
        Op(Sites.predicate(PredId).Op),
        Offset(PredId - Site.FirstPredicate) {}

  void onBranch(int NodeId, bool Taken) override {
    ++Events;
    if (NodeId != Site.NodeId || Site.SchemeKind != Scheme::Branches)
      return;
    bool True = Offset == 0 ? Taken : !Taken;
    if (True)
      recordAlarm();
  }

  void onScalarReturn(int NodeId, int64_t Result) override {
    ++Events;
    if (NodeId != Site.NodeId || Site.SchemeKind != Scheme::Returns)
      return;
    if (holds(Result, 0))
      recordAlarm();
  }

  void onScalarAssign(int NodeId, int64_t NewValue,
                      const FrameView &Frame) override {
    ++Events;
    if (Site.SchemeKind != Scheme::ScalarPairs)
      return;
    // The watched site's node may own several pair sites; only evaluate
    // ours.
    if (NodeId != Site.NodeId)
      return;
    int64_t Rhs = Site.PairIsConstant
                      ? Site.PairConstant
                      : (Frame.get(Site.PairVar).isInt()
                             ? Frame.get(Site.PairVar).asInt()
                             : NewValue);
    if (holds(NewValue, Rhs))
      recordAlarm();
  }

  /// Event index of the first alarm, or -1.
  int64_t alarmAt() const { return AlarmEvent; }
  int64_t totalEvents() const { return Events; }

  void reset() {
    Events = 0;
    AlarmEvent = -1;
  }

private:
  bool holds(int64_t Lhs, int64_t Rhs) const {
    switch (Op) {
    case PredicateOp::Lt:
      return Lhs < Rhs;
    case PredicateOp::Le:
      return Lhs <= Rhs;
    case PredicateOp::Gt:
      return Lhs > Rhs;
    case PredicateOp::Ge:
      return Lhs >= Rhs;
    case PredicateOp::Eq:
      return Lhs == Rhs;
    case PredicateOp::Ne:
      return Lhs != Rhs;
    default:
      return false;
    }
  }

  void recordAlarm() {
    if (AlarmEvent < 0)
      AlarmEvent = Events;
  }

  const SiteTable &Sites;
  const SiteInfo &Site;
  PredicateOp Op;
  uint32_t Offset;
  int64_t Events = 0;
  int64_t AlarmEvent = -1;
};

} // namespace

int main() {
  std::printf("== early-warning deployment of a failure predictor ==\n\n");

  // Phase 1: offline isolation, as usual.
  CampaignOptions Options;
  Options.NumRuns = 1500;
  Options.Seed = 424242;
  CampaignResult Result = runCampaign(rhythmboxSubject(), Options);
  CauseIsolator Isolator(Result.Sites, Result.Reports);
  AnalysisResult Analysis = Isolator.run();
  if (Analysis.Selected.empty()) {
    std::printf("no predictor found\n");
    return 1;
  }
  // Deploy an alarm on each of the top two selected predictors, plus the
  // upstream corruption predicate an engineer would pick after reading
  // the second predictor's site (the renderer only observes damage done
  // earlier in handle_get — the upstream predicate buys lead time).
  std::vector<uint32_t> Deployed;
  for (size_t I = 0; I < Analysis.Selected.size() && I < 2; ++I)
    Deployed.push_back(Analysis.Selected[I].Pred);
  for (const PredicateInfo &Pred : Result.Sites.predicates())
    if (Pred.Text == "p.sig_queued == 1 is TRUE" &&
        Result.Sites.site(Pred.Site).Function == "handle_get") {
      Deployed.push_back(Pred.Id);
      break;
    }

  for (uint32_t Pred : Deployed) {
    std::printf("deploying alarm on: %s\n",
                predicateLabel(Result.Sites, Pred).c_str());

    // Fresh runs (different seed stream) with only this alarm attached.
    AlarmObserver Alarm(Result.Sites, Pred);
    Rng Seeder(0xA1A7);
    size_t Failing = 0, AlarmBeforeCrash = 0, FalseAlarms = 0, Quiet = 0;
    std::vector<int64_t> LeadTimes;
    for (int Run = 0; Run < 1500; ++Run) {
      Rng InputRng(Seeder.next());
      RunConfig Config;
      Config.Args = rhythmboxSubject().GenerateInput(InputRng);
      Config.OverrunPad = static_cast<size_t>(InputRng.nextBelow(8));
      Config.Observer = &Alarm;
      Alarm.reset();
      RunOutcome Outcome = runProgram(*Result.Prog, Config);

      if (Outcome.failed()) {
        ++Failing;
        if (Alarm.alarmAt() >= 0) {
          ++AlarmBeforeCrash; // The run ended at the crash, so any alarm
                              // necessarily preceded it.
          LeadTimes.push_back(Alarm.totalEvents() - Alarm.alarmAt());
        } else {
          ++Quiet;
        }
      } else if (Alarm.alarmAt() >= 0) {
        ++FalseAlarms;
      }
    }

    std::printf("  of %zu failures: alarm preceded the crash in %zu, "
                "stayed silent in %zu;\n  false alarms in successful "
                "runs: %zu\n",
                Failing, AlarmBeforeCrash, Quiet, FalseAlarms);
    if (!LeadTimes.empty()) {
      std::sort(LeadTimes.begin(), LeadTimes.end());
      std::printf("  lead time: median %lld dynamic events (max %lld)\n",
                  static_cast<long long>(LeadTimes[LeadTimes.size() / 2]),
                  static_cast<long long>(LeadTimes.back()));
    }
    std::printf("\n");
  }

  std::printf("Reading: the race predictor fires on the fatal event itself "
              "(lead 0 — an exact\nalarm, but too late to act), while the "
              "upstream unsafe-API predicate fires well\nbefore the "
              "renderer crash: that is where a recovery hook would go. "
              "Choosing the\nearliest strong predicate from the affinity "
              "neighborhood is exactly the kind of\ntriage the paper's "
              "Section 5 anticipates.\n");
  return 0;
}
